#include "dtype.hpp"

#include <algorithm>
#include <cmath>

#include "util/bitops.hpp"

namespace olive {

namespace {

/** flint4 magnitude table: 3 magnitude bits -> value (paper Table 3). */
constexpr int kFlintMag[8] = {0, 1, 2, 3, 4, 6, 8, 16};

/** flint4 magnitude -> exponent-integer split used by the decoder. */
constexpr struct { u8 exp; i32 integer; } kFlintExpInt[8] = {
    {0, 0}, {0, 1}, {1, 1}, {0, 3}, {2, 1}, {1, 3}, {3, 1}, {4, 1},
};

} // namespace

std::string
toString(NormalType t)
{
    switch (t) {
      case NormalType::Int4:
        return "int4";
      case NormalType::Flint4:
        return "flint4";
      case NormalType::Int8:
        return "int8";
    }
    OLIVE_PANIC("unknown NormalType");
}

int
bitWidth(NormalType t)
{
    return t == NormalType::Int8 ? 8 : 4;
}

u32
outlierIdentifier(NormalType t)
{
    return t == NormalType::Int8 ? 0x80u : 0x8u;
}

int
maxNormalMagnitude(NormalType t)
{
    switch (t) {
      case NormalType::Int4:
        return 7;
      case NormalType::Flint4:
        return 16;
      case NormalType::Int8:
        return 127;
    }
    OLIVE_PANIC("unknown NormalType");
}

std::vector<int>
valueTable(NormalType t)
{
    std::vector<int> vals;
    switch (t) {
      case NormalType::Int4:
        for (int v = -7; v <= 7; ++v)
            vals.push_back(v);
        break;
      case NormalType::Flint4:
        for (int i = 7; i >= 1; --i)
            vals.push_back(-kFlintMag[i]);
        for (int i = 0; i <= 7; ++i)
            vals.push_back(kFlintMag[i]);
        break;
      case NormalType::Int8:
        for (int v = -127; v <= 127; ++v)
            vals.push_back(v);
        break;
    }
    return vals;
}

NormalCodec::NormalCodec(NormalType type)
    : NormalCodec(shared(type))
{
}

const NormalCodec &
NormalCodec::shared(NormalType type)
{
    // Magic statics: built once per process, immutable afterwards, so
    // concurrent first use (the calibration grid runs under
    // par::parallelFor) is safe and every copy is bit-identical.
    static const NormalCodec int4(Build{}, NormalType::Int4);
    static const NormalCodec flint4(Build{}, NormalType::Flint4);
    static const NormalCodec int8(Build{}, NormalType::Int8);
    switch (type) {
      case NormalType::Int4:
        return int4;
      case NormalType::Flint4:
        return flint4;
      case NormalType::Int8:
        return int8;
    }
    OLIVE_PANIC("unknown NormalType");
}

NormalCodec::NormalCodec(Build, NormalType type)
    : type_(type),
      identifier_(outlierIdentifier(type)),
      codeMask_((1u << bitWidth(type)) - 1u),
      maxMag_(maxNormalMagnitude(type))
{
    values_ = valueTable(type);
    codes_.reserve(values_.size());
    for (int v : values_) {
        u32 code = 0;
        switch (type_) {
          case NormalType::Int4:
            code = static_cast<u32>(v) & 0xFu;
            break;
          case NormalType::Int8:
            code = static_cast<u32>(v) & 0xFFu;
            break;
          case NormalType::Flint4: {
            const int mag = std::abs(v);
            u32 mag_code = 0;
            for (u32 i = 0; i < 8; ++i) {
                if (kFlintMag[i] == mag) {
                    mag_code = i;
                    break;
                }
            }
            code = mag_code | ((v < 0) ? 0x8u : 0x0u);
            break;
          }
        }
        codes_.push_back(code);
    }

    // Decode LUTs over the full code space; the identifier slot stays
    // zero and is never read (guarded by the decode asserts).
    for (u32 code = 0; code <= codeMask_; ++code) {
        if (code == identifier_)
            continue;
        intLut_[code] = decodeIntReference(code);
        expIntLut_[code] = decodeExpIntReference(code);
    }

    // Encode boundary table.  All representable values are small
    // integers, so every midpoint (v_i + v_{i+1}) / 2 is an exact
    // double, and encodeReference's nearest-value comparison
    // (x - lo <= hi - x, both differences exact for bracketed x)
    // reduces to exactly "x <= midpoint": ties at a midpoint choose the
    // lower value.  The chosen index is therefore the number of
    // midpoints strictly below x.
    boundaries_.reserve(values_.size() - 1);
    for (size_t i = 0; i + 1 < values_.size(); ++i) {
        boundaries_.push_back(
            (static_cast<double>(values_[i]) + values_[i + 1]) / 2.0);
    }
}

u32
NormalCodec::encodeReference(float real, float scale) const
{
    OLIVE_ASSERT(scale > 0.0f, "scale must be positive");
    const double x = static_cast<double>(real) / scale;
    // Nearest representable value (values_ is sorted ascending).
    auto it = std::lower_bound(values_.begin(), values_.end(), x);
    size_t idx;
    if (it == values_.begin()) {
        idx = 0;
    } else if (it == values_.end()) {
        idx = values_.size() - 1;
    } else {
        const size_t hi = static_cast<size_t>(it - values_.begin());
        const size_t lo = hi - 1;
        idx = (x - values_[lo] <= values_[hi] - x) ? lo : hi;
    }
    return codes_[idx];
}

int
NormalCodec::decodeIntReference(u32 code) const
{
    OLIVE_ASSERT(!isIdentifier(code), "identifier is not a normal value");
    switch (type_) {
      case NormalType::Int4:
        return bits::signExtend(code, 4);
      case NormalType::Int8:
        return bits::signExtend(code, 8);
      case NormalType::Flint4: {
        const int mag = kFlintMag[code & 0x7u];
        return (code & 0x8u) ? -mag : mag;
      }
    }
    OLIVE_PANIC("unknown NormalType");
}

ExpInt
NormalCodec::decodeExpIntReference(u32 code) const
{
    OLIVE_ASSERT(!isIdentifier(code), "identifier is not a normal value");
    switch (type_) {
      case NormalType::Int4:
      case NormalType::Int8:
        // The OVP decoder appends a zero exponent for int types
        // (Sec. 4.2).
        return ExpInt{0, decodeIntReference(code)};
      case NormalType::Flint4: {
        const auto &e = kFlintExpInt[code & 0x7u];
        const i32 sign = (code & 0x8u) ? -1 : 1;
        return ExpInt{e.exp, sign * e.integer};
      }
    }
    OLIVE_PANIC("unknown NormalType");
}

} // namespace olive
