#include "table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common.hpp"

namespace olive {

Table::Table(std::vector<std::string> header)
    : header_(std::move(header))
{
    OLIVE_ASSERT(!header_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    OLIVE_ASSERT(row.size() == header_.size(),
                 "row width must match header width");
    rows_.push_back(std::move(row));
}

std::string
Table::render() const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string out;
        for (size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            out.append(widths[c] - row[c].size(), ' ');
            if (c + 1 < row.size())
                out += "  ";
        }
        out += '\n';
        return out;
    };

    std::string out = renderRow(header_);
    size_t rule = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out.append(rule, '-');
    out += '\n';
    for (const auto &row : rows_)
        out += renderRow(row);
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
Table::num(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
Table::sci(double v)
{
    if (v == 0.0)
        return "0";
    double e = std::floor(std::log10(std::fabs(v)));
    double mant = v / std::pow(10.0, e);
    // %.0f rounds, so a mantissa in [9.5, 10) would render as the
    // malformed "10E-4"; renormalize it to "1E-3".
    if (std::fabs(mant) >= 9.5) {
        mant /= 10.0;
        e += 1.0;
    }
    char buf[64];
    // %+d keeps the historical "1E+4" form while fixing the negative
    // exponent case (previously rendered as "7E+-3").
    std::snprintf(buf, sizeof(buf), "%.0fE%+d", mant, static_cast<int>(e));
    return buf;
}

std::string
Table::pct(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, v);
    return buf;
}

} // namespace olive
