/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * experiments.
 *
 * All randomness in the repository flows through Rng so that every
 * experiment is bit-reproducible from its seed.  The generator is
 * xoshiro256** seeded via SplitMix64 (the reference seeding procedure),
 * which is fast, high quality, and has no global state.
 */

#ifndef OLIVE_UTIL_RANDOM_HPP
#define OLIVE_UTIL_RANDOM_HPP

#include <cstddef>
#include <vector>

#include "common.hpp"

namespace olive {

/**
 * xoshiro256** PRNG with convenience samplers.
 *
 * Not thread-safe; create one Rng per thread or experiment.  Copyable so
 * that a sampling state can be forked deterministically.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with SplitMix64). */
    explicit Rng(u64 seed = 0x011feed5eedULL);

    /** Next raw 64-bit output. */
    u64 next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0 */
    u64 uniformInt(u64 n);

    /** Standard normal deviate (Box-Muller, cached spare). */
    double gaussian();

    /** Normal deviate with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /**
     * Heavy-tailed deviate: standard normal with probability
     * (1 - outlier_prob), otherwise a symmetric exponential-magnitude
     * outlier whose absolute value is sampled in
     * [outlier_lo_sigma, outlier_hi_sigma] with an exponential profile.
     *
     * This is the synthetic stand-in for transformer tensor tails
     * (see DESIGN.md, substitution table).
     */
    double heavyTail(double outlier_prob, double outlier_lo_sigma,
                     double outlier_hi_sigma);

    /** Fill @p out with standard normal deviates. */
    void fillGaussian(std::vector<float> &out, double mean, double stddev);

    /** Fisher-Yates shuffle of indices [0, n). */
    std::vector<size_t> permutation(size_t n);

  private:
    u64 state_[4];
    double spare_ = 0.0;
    bool hasSpare_ = false;
};

} // namespace olive

#endif // OLIVE_UTIL_RANDOM_HPP
