/**
 * @file
 * Minimal command-line flag parser for the example programs.
 *
 * Supports "--name value" and "--name=value" forms plus boolean
 * "--flag".  Unknown flags are a fatal (user) error.
 *
 * Every program also implicitly accepts --help, which prints a usage
 * text generated from the registered flag set (name plus default, one
 * line per flag — see usageText()) to stdout and exits 0.  Nothing to
 * wire per program: any main() that constructs an Args gets it.
 *
 * Every program implicitly accepts --threads N, which resizes the
 * global parallel pool (util/parallel) before the workload runs: N = 1
 * forces serial, N = 0 restores the ambient default (OLIVE_THREADS if
 * set, else hardware concurrency).  A positive N overrides the
 * OLIVE_THREADS environment variable.  The flag never changes results —
 * the engine's deterministic partitioning keeps outputs bit-identical
 * at every thread count.
 */

#ifndef OLIVE_UTIL_ARGS_HPP
#define OLIVE_UTIL_ARGS_HPP

#include <map>
#include <string>
#include <vector>

namespace olive {

/** Parsed command-line arguments. */
class Args
{
  public:
    /**
     * Parse argv.  @p known maps flag names (without "--") to a default
     * value; flags absent from @p known trigger fatal().
     */
    Args(int argc, char **argv,
         std::map<std::string, std::string> known);

    /** String value of @p name (default if not given). */
    const std::string &get(const std::string &name) const;

    /** Integer value of @p name. */
    long getInt(const std::string &name) const;

    /** Double value of @p name. */
    double getDouble(const std::string &name) const;

    /** Boolean value: "1", "true", "yes" are true. */
    bool getBool(const std::string &name) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const { return positional_; }

    /**
     * The --help text: "usage: <prog> ..." plus one line per
     * registered flag with its default value, sorted by name (the
     * implicit --help and --threads lines carry fixed descriptions).
     * Exposed so the tests can assert the generated text without
     * spawning a process.
     */
    std::string usageText(const std::string &prog) const;

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

} // namespace olive

#endif // OLIVE_UTIL_ARGS_HPP
