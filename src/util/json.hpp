/**
 * @file
 * Small read/write JSON value layer for the serving front end.
 *
 * util/benchjson is a write-only report builder; the serve::Service
 * protocol additionally needs to *parse* client lines, so this header
 * provides a self-contained JSON document model (null / bool / number
 * / string / array / object) with a strict recursive-descent parser
 * and a deterministic serializer.  No external dependency, mirroring
 * the repository's no-new-deps rule.
 *
 * Design choices, sized to the line-delimited protocol:
 *  - Numbers are stored as double.  Token ids, request ids and counts
 *    are integers well below 2^53, so the round trip is exact; dump()
 *    prints integral values without a decimal point and non-finite
 *    values as null (JSON has no inf/nan — same convention as
 *    benchjson).
 *  - Objects preserve insertion order (vector of pairs, linear key
 *    lookup): protocol objects hold a handful of keys, and ordered
 *    output keeps event lines byte-deterministic for the tests.
 *    Duplicate keys are a parse error (the protocol never emits
 *    them and accepting the last-wins form would hide client bugs).
 *  - parse() demands exactly one document: trailing non-whitespace is
 *    an error, matching one-JSON-value-per-line framing.
 */

#ifndef OLIVE_UTIL_JSON_HPP
#define OLIVE_UTIL_JSON_HPP

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace olive {

/** One JSON value (see file comment for representation choices). */
class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /** Null by default. */
    Json() = default;

    // Implicit constructors make literal-building code read naturally:
    // Json::object({{"op", "submit"}, {"id", 7}}).
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double v) : type_(Type::Number), num_(v) {}
    Json(int v) : type_(Type::Number), num_(v) {}
    Json(long v) : type_(Type::Number), num_(static_cast<double>(v)) {}
    Json(unsigned long v) : type_(Type::Number), num_(static_cast<double>(v))
    {
    }
    Json(unsigned long long v)
        : type_(Type::Number), num_(static_cast<double>(v))
    {
    }
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    /** Empty array / array of elements. */
    static Json array(std::vector<Json> elems = {});

    /** Empty object / object of ordered key-value pairs. */
    static Json
    object(std::vector<std::pair<std::string, Json>> members = {});

    /**
     * Parse exactly one JSON document from @p text (leading/trailing
     * whitespace allowed, nothing else).  Returns std::nullopt on any
     * syntax error and, when @p error is non-null, stores a short
     * human-readable reason with the byte offset.
     */
    static std::optional<Json> parse(const std::string &text,
                                     std::string *error = nullptr);

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Value accessors; each panics unless type() matches. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /** asNumber() narrowed to long; panics unless integral in range. */
    long asInt() const;

    /** Array elements / object members (panic unless that type). */
    const std::vector<Json> &elements() const;
    const std::vector<std::pair<std::string, Json>> &members() const;

    /** Array element count / object member count; 0 for scalars. */
    size_t size() const;

    /** Member lookup; nullptr when absent (panics unless object). */
    const Json *find(const std::string &key) const;

    /** True when the object has @p key (panics unless object). */
    bool contains(const std::string &key) const
    {
        return find(key) != nullptr;
    }

    /** Append an array element (panics unless array). */
    void push(Json v);

    /** Append/replace an object member (panics unless object). */
    void set(const std::string &key, Json v);

    /**
     * Serialize compactly (no whitespace), members in insertion
     * order.  parse(dump()) reproduces the value exactly except that
     * non-finite numbers serialize as null.
     */
    std::string dump() const;

  private:
    void dumpInto(std::string &out) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> elems_;
    std::vector<std::pair<std::string, Json>> members_;
};

} // namespace olive

#endif // OLIVE_UTIL_JSON_HPP
