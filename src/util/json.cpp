#include "json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common.hpp"

namespace olive {

namespace {

/** JSON string escape: quotes, backslashes, and control characters. */
void
escapeInto(const std::string &s, std::string &out)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/**
 * Strict recursive-descent parser over a byte range.  Kept as a small
 * struct so position/error state threads through the value() recursion
 * without globals.
 */
struct Parser
{
    const std::string &text;
    size_t pos = 0;
    std::string error;
    bool failed = false;

    explicit Parser(const std::string &t) : text(t) {}

    bool fail(const std::string &why)
    {
        if (!failed) {
            failed = true;
            error = why + " at byte " + std::to_string(pos);
        }
        return false;
    }

    void skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool literal(const char *word, size_t len)
    {
        if (text.compare(pos, len, word) != 0)
            return fail(std::string("invalid literal (expected ") + word +
                        ")");
        pos += len;
        return true;
    }

    bool string(std::string &out)
    {
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        while (pos < text.size()) {
            const char c = text[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                ++pos;
                continue;
            }
            if (++pos >= text.size())
                return fail("truncated escape");
            const char e = text[pos++];
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("invalid \\u escape digit");
                }
                // The protocol is ASCII in practice; encode the code
                // point as UTF-8 (surrogate pairs are rejected — no
                // protocol field ever needs the astral planes).
                if (cp >= 0xd800 && cp <= 0xdfff)
                    return fail("surrogate \\u escapes unsupported");
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                return fail("invalid escape character");
            }
        }
        return fail("unterminated string");
    }

    bool number(double &out)
    {
        const size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        if (pos >= text.size() ||
            !(text[pos] >= '0' && text[pos] <= '9'))
            return fail("invalid number");
        if (text[pos] == '0') {
            ++pos; // no leading zeros
        } else {
            while (pos < text.size() && text[pos] >= '0' &&
                   text[pos] <= '9')
                ++pos;
        }
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            if (pos >= text.size() ||
                !(text[pos] >= '0' && text[pos] <= '9'))
                return fail("invalid number (bare decimal point)");
            while (pos < text.size() && text[pos] >= '0' &&
                   text[pos] <= '9')
                ++pos;
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (pos >= text.size() ||
                !(text[pos] >= '0' && text[pos] <= '9'))
                return fail("invalid number (empty exponent)");
            while (pos < text.size() && text[pos] >= '0' &&
                   text[pos] <= '9')
                ++pos;
        }
        out = std::strtod(text.c_str() + start, nullptr);
        return true;
    }

    bool value(Json &out, int depth)
    {
        if (depth > 64)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == 'n') {
            if (!literal("null", 4))
                return false;
            out = Json();
            return true;
        }
        if (c == 't') {
            if (!literal("true", 4))
                return false;
            out = Json(true);
            return true;
        }
        if (c == 'f') {
            if (!literal("false", 5))
                return false;
            out = Json(false);
            return true;
        }
        if (c == '"') {
            std::string s;
            if (!string(s))
                return false;
            out = Json(std::move(s));
            return true;
        }
        if (c == '[') {
            ++pos;
            out = Json::array();
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            while (true) {
                Json elem;
                if (!value(elem, depth + 1))
                    return false;
                out.push(std::move(elem));
                skipWs();
                if (pos >= text.size())
                    return fail("unterminated array");
                if (text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (text[pos] == ']') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or ']' in array");
            }
        }
        if (c == '{') {
            ++pos;
            out = Json::object();
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!string(key))
                    return false;
                if (out.contains(key))
                    return fail("duplicate object key \"" + key + "\"");
                skipWs();
                if (pos >= text.size() || text[pos] != ':')
                    return fail("expected ':' after object key");
                ++pos;
                Json member;
                if (!value(member, depth + 1))
                    return false;
                out.set(key, std::move(member));
                skipWs();
                if (pos >= text.size())
                    return fail("unterminated object");
                if (text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (text[pos] == '}') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or '}' in object");
            }
        }
        if (c == '-' || (c >= '0' && c <= '9')) {
            double v = 0.0;
            if (!number(v))
                return false;
            out = Json(v);
            return true;
        }
        return fail("unexpected character");
    }
};

} // namespace

Json
Json::array(std::vector<Json> elems)
{
    Json j;
    j.type_ = Type::Array;
    j.elems_ = std::move(elems);
    return j;
}

Json
Json::object(std::vector<std::pair<std::string, Json>> members)
{
    Json j;
    j.type_ = Type::Object;
    j.members_ = std::move(members);
    return j;
}

std::optional<Json>
Json::parse(const std::string &text, std::string *error)
{
    Parser p(text);
    Json out;
    if (!p.value(out, 0)) {
        if (error)
            *error = p.error;
        return std::nullopt;
    }
    p.skipWs();
    if (p.pos != p.text.size()) {
        p.fail("trailing characters after document");
        if (error)
            *error = p.error;
        return std::nullopt;
    }
    return out;
}

bool
Json::asBool() const
{
    OLIVE_ASSERT(isBool(), "Json::asBool on a non-bool value");
    return bool_;
}

double
Json::asNumber() const
{
    OLIVE_ASSERT(isNumber(), "Json::asNumber on a non-number value");
    return num_;
}

const std::string &
Json::asString() const
{
    OLIVE_ASSERT(isString(), "Json::asString on a non-string value");
    return str_;
}

long
Json::asInt() const
{
    const double v = asNumber();
    const long n = static_cast<long>(v);
    OLIVE_ASSERT(static_cast<double>(n) == v,
                 "Json::asInt on a non-integral number");
    return n;
}

const std::vector<Json> &
Json::elements() const
{
    OLIVE_ASSERT(isArray(), "Json::elements on a non-array value");
    return elems_;
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    OLIVE_ASSERT(isObject(), "Json::members on a non-object value");
    return members_;
}

size_t
Json::size() const
{
    if (isArray())
        return elems_.size();
    if (isObject())
        return members_.size();
    return 0;
}

const Json *
Json::find(const std::string &key) const
{
    OLIVE_ASSERT(isObject(), "Json::find on a non-object value");
    for (const auto &kv : members_) {
        if (kv.first == key)
            return &kv.second;
    }
    return nullptr;
}

void
Json::push(Json v)
{
    OLIVE_ASSERT(isArray(), "Json::push on a non-array value");
    elems_.push_back(std::move(v));
}

void
Json::set(const std::string &key, Json v)
{
    OLIVE_ASSERT(isObject(), "Json::set on a non-object value");
    for (auto &kv : members_) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return;
        }
    }
    members_.emplace_back(key, std::move(v));
}

std::string
Json::dump() const
{
    std::string out;
    dumpInto(out);
    return out;
}

void
Json::dumpInto(std::string &out) const
{
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number: {
        if (!std::isfinite(num_)) {
            out += "null"; // JSON has no inf/nan (benchjson convention)
            break;
        }
        // Integral values print without a decimal point (ids, tokens,
        // counts — the protocol's common case); %.17g round-trips the
        // rest.
        const double r = std::nearbyint(num_);
        if (r == num_ && std::fabs(num_) < 9.007199254740992e15) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.0f", num_);
            out += buf;
        } else {
            char buf[40];
            std::snprintf(buf, sizeof buf, "%.17g", num_);
            out += buf;
        }
        break;
      }
      case Type::String:
        escapeInto(str_, out);
        break;
      case Type::Array: {
        out += '[';
        bool first = true;
        for (const Json &e : elems_) {
            if (!first)
                out += ',';
            first = false;
            e.dumpInto(out);
        }
        out += ']';
        break;
      }
      case Type::Object: {
        out += '{';
        bool first = true;
        for (const auto &kv : members_) {
            if (!first)
                out += ',';
            first = false;
            escapeInto(kv.first, out);
            out += ':';
            kv.second.dumpInto(out);
        }
        out += '}';
        break;
      }
    }
}

} // namespace olive
