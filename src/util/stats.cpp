#include "stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common.hpp"

namespace olive {
namespace stats {

double
mean(std::span<const float> xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (float x : xs)
        acc += x;
    return acc / static_cast<double>(xs.size());
}

double
stddev(std::span<const float> xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (float x : xs) {
        const double d = x - m;
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
absMax(std::span<const float> xs)
{
    double best = 0.0;
    for (float x : xs)
        best = std::max(best, static_cast<double>(std::fabs(x)));
    return best;
}

double
outlierRatio(std::span<const float> xs, double k_sigma)
{
    if (xs.empty())
        return 0.0;
    const double m = mean(xs);
    const double s = stddev(xs);
    if (s == 0.0)
        return 0.0;
    size_t count = 0;
    for (float x : xs) {
        if (std::fabs(x - m) > k_sigma * s)
            ++count;
    }
    return static_cast<double>(count) / static_cast<double>(xs.size());
}

double
robustSigma(std::span<const float> xs)
{
    if (xs.size() < 2)
        return 0.0;
    std::vector<float> absdev(xs.size());
    const double med = percentile(xs, 50.0);
    for (size_t i = 0; i < xs.size(); ++i)
        absdev[i] = static_cast<float>(std::fabs(xs[i] - med));
    return percentile(absdev, 50.0) / 0.6745;
}

double
mse(std::span<const float> a, std::span<const float> b)
{
    OLIVE_ASSERT(a.size() == b.size(), "mse requires equal sizes");
    if (a.empty())
        return 0.0;
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        acc += d * d;
    }
    return acc / static_cast<double>(a.size());
}

double
mae(std::span<const float> a, std::span<const float> b)
{
    OLIVE_ASSERT(a.size() == b.size(), "mae requires equal sizes");
    if (a.empty())
        return 0.0;
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        acc += std::fabs(static_cast<double>(a[i]) - b[i]);
    return acc / static_cast<double>(a.size());
}

double
sqnrDb(std::span<const float> ref, std::span<const float> quant)
{
    OLIVE_ASSERT(ref.size() == quant.size(), "sqnr requires equal sizes");
    double sig = 0.0, noise = 0.0;
    for (size_t i = 0; i < ref.size(); ++i) {
        const double r = ref[i];
        const double d = r - quant[i];
        sig += r * r;
        noise += d * d;
    }
    if (noise == 0.0)
        return std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(sig / noise);
}

double
geomean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs) {
        OLIVE_ASSERT(x > 0.0, "geomean requires positive values");
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

double
percentile(std::span<const float> xs, double p)
{
    OLIVE_ASSERT(!xs.empty(), "percentile of empty span");
    OLIVE_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
    std::vector<float> v(xs.begin(), xs.end());
    const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    // Selection instead of a full sort: nth_element places the exact
    // lo-th order statistic, and the (lo+1)-th is the minimum of the
    // right partition — the same two values a sorted copy would yield,
    // at O(n) instead of O(n log n).  robustSigma calls this twice per
    // calibration, so it is on the quantizer's hot path.
    const auto mid = v.begin() + static_cast<std::ptrdiff_t>(lo);
    std::nth_element(v.begin(), mid, v.end());
    const float vlo = v[lo];
    const float vhi =
        (hi == lo) ? vlo : *std::min_element(mid + 1, v.end());
    return vlo * (1.0 - frac) + vhi * frac;
}

double
pearson(std::span<const float> a, std::span<const float> b)
{
    OLIVE_ASSERT(a.size() == b.size(), "pearson requires equal sizes");
    if (a.size() < 2)
        return 0.0;
    const double ma = mean(a), mb = mean(b);
    double num = 0.0, da = 0.0, db = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double xa = a[i] - ma;
        const double xb = b[i] - mb;
        num += xa * xb;
        da += xa * xa;
        db += xb * xb;
    }
    if (da == 0.0 || db == 0.0)
        return 0.0;
    return num / std::sqrt(da * db);
}

double
matthews(std::span<const int> pred, std::span<const int> truth)
{
    OLIVE_ASSERT(pred.size() == truth.size(),
                 "matthews requires equal sizes");
    double tp = 0, tn = 0, fp = 0, fn = 0;
    for (size_t i = 0; i < pred.size(); ++i) {
        if (pred[i] == 1 && truth[i] == 1)
            ++tp;
        else if (pred[i] == 0 && truth[i] == 0)
            ++tn;
        else if (pred[i] == 1 && truth[i] == 0)
            ++fp;
        else
            ++fn;
    }
    const double denom =
        std::sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn));
    if (denom == 0.0)
        return 0.0;
    return (tp * tn - fp * fn) / denom;
}

double
accuracyPct(std::span<const int> pred, std::span<const int> truth)
{
    OLIVE_ASSERT(pred.size() == truth.size(),
                 "accuracy requires equal sizes");
    if (pred.empty())
        return 0.0;
    size_t correct = 0;
    for (size_t i = 0; i < pred.size(); ++i) {
        if (pred[i] == truth[i])
            ++correct;
    }
    return 100.0 * static_cast<double>(correct) /
           static_cast<double>(pred.size());
}

double
f1Pct(std::span<const int> pred, std::span<const int> truth)
{
    OLIVE_ASSERT(pred.size() == truth.size(), "f1 requires equal sizes");
    double tp = 0, fp = 0, fn = 0;
    for (size_t i = 0; i < pred.size(); ++i) {
        if (pred[i] == 1 && truth[i] == 1)
            ++tp;
        else if (pred[i] == 1 && truth[i] == 0)
            ++fp;
        else if (pred[i] == 0 && truth[i] == 1)
            ++fn;
    }
    if (tp == 0)
        return 0.0;
    const double precision = tp / (tp + fp);
    const double recall = tp / (tp + fn);
    return 100.0 * 2.0 * precision * recall / (precision + recall);
}

size_t
Histogram::total() const
{
    size_t n = underflow + overflow;
    for (size_t c : bins)
        n += c;
    return n;
}

Histogram
histogram(std::span<const float> xs, double lo, double hi, size_t nbins)
{
    OLIVE_ASSERT(hi > lo, "histogram range must be non-empty");
    OLIVE_ASSERT(nbins > 0, "histogram needs at least one bin");
    Histogram h;
    h.lo = lo;
    h.hi = hi;
    h.bins.assign(nbins, 0);
    const double width = (hi - lo) / static_cast<double>(nbins);
    for (float x : xs) {
        if (x < lo) {
            ++h.underflow;
        } else if (x >= hi) {
            ++h.overflow;
        } else {
            auto bin = static_cast<size_t>((x - lo) / width);
            if (bin >= nbins)
                bin = nbins - 1;
            ++h.bins[bin];
        }
    }
    return h;
}

} // namespace stats
} // namespace olive
