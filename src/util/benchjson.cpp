#include "benchjson.hpp"

#include <cmath>
#include <cstdio>

namespace olive {

namespace {

/** JSON string escape: quotes, backslashes, and control characters. */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** JSON number: shortest round-trippable-ish form; null for non-finite. */
std::string
number(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

} // namespace

BenchReport::Entry &
BenchReport::Entry::metric(const std::string &key, double value)
{
    metrics_.emplace_back(key, value);
    return *this;
}

BenchReport::Entry &
BenchReport::Entry::label(const std::string &key, const std::string &value)
{
    labels_.emplace_back(key, value);
    return *this;
}

BenchReport::BenchReport(std::string bench_name)
    : benchName_(std::move(bench_name))
{
}

void
BenchReport::note(const std::string &key, const std::string &value)
{
    notes_.emplace_back(key, value);
}

BenchReport::Entry &
BenchReport::add(const std::string &name)
{
    entries_.emplace_back(name);
    return entries_.back();
}

std::string
BenchReport::render() const
{
    // Built with plain += appends only: GCC 12's -Wrestrict false
    // positive fires on literal + temporary-string operator+ chains.
    std::string out;
    out += "{\n  \"bench\": \"";
    out += escape(benchName_);
    out += "\",\n  \"meta\": {";
    for (size_t i = 0; i < notes_.size(); ++i) {
        if (i)
            out += ", ";
        out += "\"";
        out += escape(notes_[i].first);
        out += "\": \"";
        out += escape(notes_[i].second);
        out += "\"";
    }
    out += "},\n  \"results\": [\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
        const Entry &e = entries_[i];
        out += "    {\"name\": \"";
        out += escape(e.name_);
        out += "\"";
        for (const auto &[key, value] : e.labels_) {
            out += ", \"";
            out += escape(key);
            out += "\": \"";
            out += escape(value);
            out += "\"";
        }
        for (const auto &[key, value] : e.metrics_) {
            out += ", \"";
            out += escape(key);
            out += "\": ";
            out += number(value);
        }
        out += "}";
        if (i + 1 < entries_.size())
            out += ",";
        out += "\n";
    }
    out += "  ]\n}\n";
    return out;
}

bool
BenchReport::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
        return false;
    }
    const std::string doc = render();
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    std::fclose(f);
    if (!ok)
        std::fprintf(stderr, "warning: short write to %s\n", path.c_str());
    return ok;
}

} // namespace olive
