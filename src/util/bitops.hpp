/**
 * @file
 * Bit-field helpers shared by the codec and hardware-model layers.
 *
 * The OVP encoders/decoders manipulate 4- and 8-bit fields packed into
 * bytes; these helpers keep that manipulation readable and centralized
 * so the bit-exact tests only have to trust one implementation.
 */

#ifndef OLIVE_UTIL_BITOPS_HPP
#define OLIVE_UTIL_BITOPS_HPP

#include "common.hpp"

namespace olive {
namespace bits {

/** Extract bits [lo, lo+len) of @p v. */
constexpr u32
field(u32 v, unsigned lo, unsigned len)
{
    return (v >> lo) & ((1u << len) - 1u);
}

/** Set bits [lo, lo+len) of @p v to @p x (x must fit in len bits). */
constexpr u32
setField(u32 v, unsigned lo, unsigned len, u32 x)
{
    const u32 mask = ((1u << len) - 1u) << lo;
    return (v & ~mask) | ((x << lo) & mask);
}

/** Sign-extend the low @p width bits of @p v to a signed 32-bit value. */
constexpr i32
signExtend(u32 v, unsigned width)
{
    // width == 0 would shift by width - 1 == UINT_MAX below (UB).
    OLIVE_ASSERT(width >= 1 && width <= 32, "signExtend width out of range");
    const u32 mask = (width >= 32) ? ~0u : ((1u << width) - 1u);
    const u32 x = v & mask;
    const u32 sign = 1u << (width - 1);
    // Subtract in unsigned (wraps, well-defined) and convert at the
    // end: the signed form overflows for width == 32 negative values.
    return static_cast<i32>((x ^ sign) - sign);
}

/** Low nibble of a byte. */
constexpr u8
lowNibble(u8 b)
{
    return b & 0x0f;
}

/** High nibble of a byte. */
constexpr u8
highNibble(u8 b)
{
    return (b >> 4) & 0x0f;
}

/** Pack two nibbles into a byte; @p hi occupies bits [4,8). */
constexpr u8
packNibbles(u8 hi, u8 lo)
{
    return static_cast<u8>(((hi & 0x0f) << 4) | (lo & 0x0f));
}

/** Number of set bits. */
constexpr unsigned
popcount(u64 v)
{
    unsigned n = 0;
    while (v) {
        v &= v - 1;
        ++n;
    }
    return n;
}

} // namespace bits
} // namespace olive

#endif // OLIVE_UTIL_BITOPS_HPP
