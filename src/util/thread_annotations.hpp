/**
 * @file
 * Clang thread-safety (capability) annotations and the annotated lock
 * primitives the concurrent subsystems build on.
 *
 * Clang's `-Wthread-safety` analysis turns the repository's locking
 * conventions into compile-time checks: every mutex-protected field is
 * declared OLIVE_GUARDED_BY its mutex, every `*Locked()` helper
 * declares OLIVE_REQUIRES, and a lock-discipline violation (touching a
 * guarded field without the lock, calling a Locked helper unlocked,
 * double-acquiring) is a build break under the clang CI job, which
 * compiles with `-Wthread-safety -Werror`.  Under GCC — which has no
 * capability analysis — every macro expands to nothing, so the
 * annotations are free documentation there.
 *
 * The analysis only understands lock types that are themselves
 * annotated as capabilities, and libstdc++'s std::mutex is not; so
 * this header also provides olive::Mutex / olive::MutexLock /
 * olive::CondVar — thin, zero-overhead wrappers over std::mutex,
 * std::unique_lock and std::condition_variable carrying the
 * annotations.  All mutex-protected state in serve/ and util/parallel
 * uses these instead of the std types directly.
 *
 * Known, deliberate limits of the static layer (the TSan tier covers
 * the dynamic side):
 *  - The analysis has no alias tracking: data published lock-free by
 *    construction (append-once block payloads, pinned decoded planes)
 *    is left unannotated with the publication protocol documented at
 *    the field.
 *  - An annotation cannot name another object's capability, so a
 *    nested struct member guarded by its *owner's* mutex (e.g.
 *    DecodedBlockCache::Entry::pins) documents the guard in a comment.
 *  - std::condition_variable::wait() releases and reacquires the lock
 *    internally; the analysis does not model that, which is sound (the
 *    lock is held again whenever annotated code runs).  Wait
 *    predicates run under the lock, so they are annotated
 *    OLIVE_REQUIRES at the lambda.
 */

#ifndef OLIVE_UTIL_THREAD_ANNOTATIONS_HPP
#define OLIVE_UTIL_THREAD_ANNOTATIONS_HPP

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define OLIVE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef OLIVE_THREAD_ANNOTATION
#define OLIVE_THREAD_ANNOTATION(x) // no capability analysis (GCC, old clang)
#endif

/** Marks a type as a lockable capability ("mutex", "role", ...). */
#define OLIVE_CAPABILITY(x) OLIVE_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor / releases in its dtor. */
#define OLIVE_SCOPED_CAPABILITY OLIVE_THREAD_ANNOTATION(scoped_lockable)

/** Field may only be read/written while holding @p x. */
#define OLIVE_GUARDED_BY(x) OLIVE_THREAD_ANNOTATION(guarded_by(x))

/** Pointer field whose *pointee* is protected by @p x. */
#define OLIVE_PT_GUARDED_BY(x) OLIVE_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function requires the capabilities to be held on entry (and exit). */
#define OLIVE_REQUIRES(...) \
    OLIVE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the capabilities and holds them on return. */
#define OLIVE_ACQUIRE(...) \
    OLIVE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the capabilities (held on entry, not on return). */
#define OLIVE_RELEASE(...) \
    OLIVE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function may not be called while holding the capabilities. */
#define OLIVE_EXCLUDES(...) \
    OLIVE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the capability guarding its result. */
#define OLIVE_RETURN_CAPABILITY(x) OLIVE_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: skip analysis of one function body (justify at use). */
#define OLIVE_NO_THREAD_SAFETY_ANALYSIS \
    OLIVE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace olive {

class CondVar;

/**
 * std::mutex carrying the capability annotation.  Same storage, same
 * cost; lock()/unlock() only tell the analysis what they do.
 */
class OLIVE_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() OLIVE_ACQUIRE() { mu_.lock(); }
    void unlock() OLIVE_RELEASE() { mu_.unlock(); }

  private:
    friend class CondVar;
    friend class MutexLock;
    std::mutex mu_;
};

/**
 * RAII lock over an olive::Mutex (the std::lock_guard / attr-carrying
 * std::unique_lock of this codebase).  Supports early unlock() for the
 * rethrow-outside-the-lock pattern and condition-variable waits via
 * olive::CondVar.
 */
class OLIVE_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) OLIVE_ACQUIRE(mu)
        : lock_(mu.mu_)
    {
    }

    ~MutexLock() OLIVE_RELEASE() = default; // unique_lock unlocks if held

    /** Release before scope exit (e.g. to rethrow outside the lock). */
    void unlock() OLIVE_RELEASE() { lock_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    friend class CondVar;
    std::unique_lock<std::mutex> lock_;
};

/**
 * Condition variable paired with olive::Mutex.  The predicate runs
 * with the lock held — annotate predicate lambdas
 * OLIVE_REQUIRES(that_mutex) so guarded reads inside them check.
 */
class CondVar
{
  public:
    /** Wait until @p pred (evaluated under @p lock's mutex) is true. */
    template <class Pred>
    void
    wait(MutexLock &lock, Pred pred)
    {
        cv_.wait(lock.lock_, pred);
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace olive

#endif // OLIVE_UTIL_THREAD_ANNOTATIONS_HPP
