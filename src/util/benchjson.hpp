/**
 * @file
 * Machine-readable benchmark reports.
 *
 * The bench drivers print human-oriented ASCII tables (util/table); this
 * helper additionally records the same numbers as a small JSON document
 * (BENCH_micro.json, BENCH_parallel.json, ...) so the repository's
 * performance trajectory is tracked across PRs and CI can upload the
 * files as artifacts.
 *
 * The writer is deliberately tiny: ordered entries of numeric metrics
 * and string labels, no external JSON dependency.  Non-finite metrics
 * serialize as null (JSON has no inf/nan).
 */

#ifndef OLIVE_UTIL_BENCHJSON_HPP
#define OLIVE_UTIL_BENCHJSON_HPP

#include <deque>
#include <string>
#include <utility>
#include <vector>

namespace olive {

/** Ordered JSON report of one benchmark run. */
class BenchReport
{
  public:
    /** One named result row. */
    class Entry
    {
      public:
        explicit Entry(std::string name) : name_(std::move(name)) {}

        /** Attach a numeric metric (chainable). */
        Entry &metric(const std::string &key, double value);

        /** Attach a string label (chainable). */
        Entry &label(const std::string &key, const std::string &value);

      private:
        friend class BenchReport;
        std::string name_;
        std::vector<std::pair<std::string, double>> metrics_;
        std::vector<std::pair<std::string, std::string>> labels_;
    };

    /** @param bench_name Driver name recorded in the document. */
    explicit BenchReport(std::string bench_name);

    /** Top-level string metadata (smoke flag, thread count, ...). */
    void note(const std::string &key, const std::string &value);

    /**
     * Append a result row and return it for metric()/label()
     * chaining.  The reference stays valid across later add() calls
     * (entries live in a deque).
     */
    Entry &add(const std::string &name);

    /** Render the whole report as a JSON document. */
    std::string render() const;

    /**
     * Write render() to @p path.  Returns false (after printing a
     * warning) if the file cannot be written; benches treat that as
     * non-fatal so read-only working directories do not fail smoke
     * runs.
     */
    bool writeFile(const std::string &path) const;

  private:
    std::string benchName_;
    std::vector<std::pair<std::string, std::string>> notes_;
    std::deque<Entry> entries_;
};

} // namespace olive

#endif // OLIVE_UTIL_BENCHJSON_HPP
