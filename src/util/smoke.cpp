#include "util/smoke.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/parallel.hpp"

namespace olive {
namespace smoke {

bool
enabled()
{
    const char *v = std::getenv("OLIVE_SMOKE");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

size_t
count(size_t full, size_t quick)
{
    return enabled() ? quick : full;
}

void
banner()
{
    if (enabled())
        std::printf("[smoke] OLIVE_SMOKE is set: reduced workloads; "
                    "numbers are NOT paper-comparable\n\n");
    if (par::threadCount() > 1)
        std::printf("[parallel] %zu threads (OLIVE_THREADS or --threads "
                    "to change; results are thread-count invariant)\n\n",
                    par::threadCount());
}

} // namespace smoke
} // namespace olive
