/**
 * @file
 * Core definitions shared by every OliVe module: fixed-width integer
 * aliases, assertion macros, and gem5-style panic/fatal error helpers.
 *
 * Error semantics follow the gem5 convention:
 *  - panic():  something happened that should never happen regardless of
 *              user input, i.e. an internal bug.  Aborts.
 *  - fatal():  the run cannot continue because of a user-level error
 *              (bad configuration, invalid argument).  Exits with code 1.
 */

#ifndef OLIVE_UTIL_COMMON_HPP
#define OLIVE_UTIL_COMMON_HPP

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace olive {

using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

namespace detail {

/** Print a formatted diagnostic and abort the process. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Print a formatted diagnostic and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

} // namespace detail

} // namespace olive

/** Abort on an internal invariant violation (a bug in OliVe itself). */
#define OLIVE_PANIC(msg) \
    ::olive::detail::panicImpl(__FILE__, __LINE__, (msg))

/** Exit cleanly on a user-level configuration error. */
#define OLIVE_FATAL(msg) \
    ::olive::detail::fatalImpl(__FILE__, __LINE__, (msg))

/**
 * Internal-consistency assertion.  Enabled in all build types: the
 * simulators and codecs in this project are cheap relative to the cost of
 * silently producing wrong experiment numbers.
 */
#define OLIVE_ASSERT(cond, msg)                                        \
    do {                                                               \
        if (!(cond)) {                                                 \
            OLIVE_PANIC(std::string("assertion failed: ") + #cond +    \
                        " — " + (msg));                                \
        }                                                              \
    } while (0)

#endif // OLIVE_UTIL_COMMON_HPP
