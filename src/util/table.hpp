/**
 * @file
 * Aligned ASCII table renderer used by the benchmark harness to print
 * paper-style tables and figure series.
 */

#ifndef OLIVE_UTIL_TABLE_HPP
#define OLIVE_UTIL_TABLE_HPP

#include <string>
#include <vector>

namespace olive {

/**
 * Simple column-aligned table.  Usage:
 * @code
 *   Table t({"Model", "Speedup"});
 *   t.addRow({"BERT-base", "4.5"});
 *   t.print();
 * @endcode
 */
class Table
{
  public:
    /** Construct with the header row. */
    explicit Table(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Render to a string with column alignment and a separator rule. */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

    /** Format a double with @p digits decimals. */
    static std::string num(double v, int digits = 2);

    /** Format a double in scientific notation (e.g. "1E+4" style). */
    static std::string sci(double v);

    /** Format a percentage with @p digits decimals and a % suffix. */
    static std::string pct(double v, int digits = 2);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace olive

#endif // OLIVE_UTIL_TABLE_HPP
