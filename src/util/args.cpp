#include "args.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common.hpp"
#include "parallel.hpp"

namespace olive {

Args::Args(int argc, char **argv, std::map<std::string, std::string> known)
    : values_(std::move(known))
{
    // Implicit --threads flag (see the file comment in args.hpp).
    const bool had_threads = values_.count("threads") != 0;
    if (!had_threads)
        values_.emplace("threads", "");
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        // erase() instead of self-assigning substr(): the latter trips
        // GCC 12's -Wrestrict false positive when inlined into drivers.
        arg.erase(0, 2);
        std::string name, value;
        bool bare = false;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name.assign(arg, 0, eq);
            value.assign(arg, eq + 1, std::string::npos);
        } else {
            name = std::move(arg);
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                value.push_back('1'); // bare boolean flag
                bare = true;
            }
        }
        if (name == "help") {
            std::fputs(usageText(argv[0]).c_str(), stdout);
            std::exit(0); // NOLINT(concurrency-mt-unsafe)
        }
        auto it = values_.find(name);
        if (it == values_.end()) {
            // Report the full flag set so a typo is a one-round fix
            // (std::map keeps the list sorted).
            std::string known_flags;
            for (const auto &kv : values_) {
                if (!known_flags.empty())
                    known_flags += ", ";
                known_flags += "--" + kv.first;
            }
            OLIVE_FATAL("unknown flag --" + name +
                        " (known flags: " + known_flags + ")");
        }
        // The implicit --threads is numeric-only: the bare-boolean "1"
        // (or an empty "--threads=") would silently pin the pool serial
        // where the user almost certainly forgot the count.
        if (!had_threads && name == "threads" && (bare || value.empty()))
            OLIVE_FATAL("--threads requires a value (0 = default)");
        it->second = value;
    }

    if (!had_threads) {
        const std::string &t = values_.at("threads");
        if (!t.empty())
            par::setThreadCount(
                par::parseThreadCount(t.c_str(), "--threads"));
    }
}

std::string
Args::usageText(const std::string &prog) const
{
    // values_ is a std::map, so the per-flag lines come out sorted.
    std::string text = "usage: " + prog +
                       " [--flag value | --flag=value | --flag]\n\n";
    size_t width = sizeof("help") - 1;
    for (const auto &kv : values_)
        width = std::max(width, kv.first.size());
    const auto line = [&](const std::string &name,
                          const std::string &desc) {
        text += "  --" + name;
        text.append(width - name.size() + 2, ' ');
        text += desc + "\n";
    };
    for (const auto &kv : values_) {
        if (kv.first == "threads") {
            line(kv.first, "parallel pool size (1 = serial, 0 = "
                           "ambient default)");
        } else {
            line(kv.first, "(default \"" + kv.second + "\")");
        }
    }
    line("help", "print this usage text and exit");
    return text;
}

const std::string &
Args::get(const std::string &name) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        OLIVE_FATAL("flag --" + name + " was not declared");
    return it->second;
}

long
Args::getInt(const std::string &name) const
{
    return std::stol(get(name));
}

double
Args::getDouble(const std::string &name) const
{
    return std::stod(get(name));
}

bool
Args::getBool(const std::string &name) const
{
    const std::string &v = get(name);
    return v == "1" || v == "true" || v == "yes";
}

} // namespace olive
