#include "args.hpp"

#include "common.hpp"

namespace olive {

Args::Args(int argc, char **argv, std::map<std::string, std::string> known)
    : values_(std::move(known))
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        std::string name, value;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                value = "1"; // bare boolean flag
            }
        }
        auto it = values_.find(name);
        if (it == values_.end())
            OLIVE_FATAL("unknown flag --" + name);
        it->second = value;
    }
}

const std::string &
Args::get(const std::string &name) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        OLIVE_FATAL("flag --" + name + " was not declared");
    return it->second;
}

long
Args::getInt(const std::string &name) const
{
    return std::stol(get(name));
}

double
Args::getDouble(const std::string &name) const
{
    return std::stod(get(name));
}

bool
Args::getBool(const std::string &name) const
{
    const std::string &v = get(name);
    return v == "1" || v == "true" || v == "yes";
}

} // namespace olive
