#include "parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "common.hpp"
#include "thread_annotations.hpp"

namespace olive {
namespace par {

namespace {

/**
 * True while this thread is executing a parallelFor chunk — on a pool
 * worker or on the calling thread, which participates in its own
 * region.  A nested parallelFor must run inline in both cases: the
 * caller still holds the pool's region lock, so re-entering the pool
 * would self-deadlock.
 */
thread_local bool tls_in_region = false;

/** RAII setter for tls_in_region around user-kernel invocations. */
struct RegionGuard
{
    bool prev;
    RegionGuard()
        : prev(tls_in_region)
    {
        tls_in_region = true;
    }
    ~RegionGuard() { tls_in_region = prev; }
};

/** Thread count implied by the environment (OLIVE_THREADS or hardware). */
size_t
envThreads()
{
    // getenv() is not reentrant against setenv(), which this codebase
    // never calls after main() starts; the one read happens on first
    // pool use.  (NOLINT: concurrency-mt-unsafe — see above.)
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char *env = std::getenv(kThreadsEnv);
    if (env && *env) {
        const size_t v = parseThreadCount(env, kThreadsEnv);
        if (v > 0)
            return v;
        // 0 falls through to the hardware default.
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

/**
 * Run the chunk loop inline on the calling thread (serial path).
 * Mirrors the pool's exception semantics — every chunk runs, the first
 * exception is rethrown after the loop drains — so the state a caller
 * observes on catch does not depend on the thread count.
 */
void
runChunksSerial(size_t begin, size_t end, size_t grain,
                const std::function<void(size_t, size_t)> &fn)
{
    RegionGuard region;
    std::exception_ptr err;
    for (size_t b = begin; b < end; b += grain) {
        try {
            fn(b, std::min(end, b + grain));
        } catch (...) {
            if (!err)
                err = std::current_exception();
        }
    }
    if (err)
        std::rethrow_exception(err);
}

/**
 * The global pool.  One parallel region runs at a time (apiMutex_).
 * Chunks are handed out from a cursor guarded by jobMutex_ — chunks are
 * coarse (a grain of work each), so the per-chunk lock is noise, and it
 * makes every job field access trivially synchronized: a worker that
 * outlives a job can never observe or steal from a later one, because
 * the generation check and the cursor pop happen under the same lock.
 * The caller participates in its own job, so a region never deadlocks
 * waiting for busy workers.
 *
 * Lock hierarchy: apiMutex_ may be held while taking jobMutex_ (run(),
 * stopWorkersLocked()); jobMutex_ is never held while taking apiMutex_.
 */
class Pool
{
  public:
    static Pool &
    instance()
    {
        static Pool pool;
        return pool;
    }

    ~Pool() { stopWorkers(); }

    size_t
    threads() const
    {
        // Lock-free so kernels may size work by pool width without
        // re-entering apiMutex_ (which run() holds for the region).
        // relaxed: the mirror is a monotone-free standalone value with
        // no data published through it — any recent value is valid.
        return targetMirror_.load(std::memory_order_relaxed);
    }

    void
    resize(size_t n) OLIVE_EXCLUDES(apiMutex_)
    {
        OLIVE_ASSERT(!tls_in_region,
                     "setThreadCount inside a parallel region would "
                     "deadlock the pool");
        const MutexLock lock(apiMutex_);
        const size_t want = n ? n : envDefault();
        if (want == target_)
            return;
        stopWorkersLocked();
        target_ = want;
        // relaxed: threads() readers need the value, not an ordering —
        // resize happens-before the next region via apiMutex_ anyway.
        targetMirror_.store(want, std::memory_order_relaxed);
    }

    void
    run(size_t begin, size_t end, size_t grain,
        const std::function<void(size_t, size_t)> &fn)
        OLIVE_EXCLUDES(apiMutex_, jobMutex_)
    {
        const MutexLock lock(apiMutex_);
        const size_t chunks = chunkCount(begin, end, grain);
        if (target_ == 1 || chunks <= 1) {
            runChunksSerial(begin, end, grain, fn);
            return;
        }
        ensureWorkersLocked();

        u64 gen;
        {
            const MutexLock job_lock(jobMutex_);
            job_.fn = &fn;
            job_.begin = begin;
            job_.end = end;
            job_.grain = grain;
            job_.chunks = chunks;
            job_.nextChunk = 0;
            job_.doneChunks = 0;
            job_.error = nullptr;
            gen = ++generation_;
        }
        jobCv_.notifyAll();

        work(gen);

        MutexLock job_lock(jobMutex_);
        doneCv_.wait(job_lock, [this]() OLIVE_REQUIRES(jobMutex_) {
            return job_.doneChunks == job_.chunks;
        });
        job_.fn = nullptr;
        if (job_.error) {
            std::exception_ptr err = job_.error;
            job_.error = nullptr;
            job_lock.unlock();
            std::rethrow_exception(err);
        }
    }

  private:
    struct Job
    {
        const std::function<void(size_t, size_t)> *fn = nullptr;
        size_t begin = 0;
        size_t end = 0;
        size_t grain = 1;
        size_t chunks = 0;
        size_t nextChunk = 0;
        size_t doneChunks = 0;
        std::exception_ptr error;
    };

    Pool()
        : target_(envDefault()),
          targetMirror_(target_)
    {
    }

    static size_t
    envDefault()
    {
        static const size_t n = envThreads();
        return n;
    }

    void
    ensureWorkersLocked() OLIVE_REQUIRES(apiMutex_)
    {
        if (!workers_.empty() || target_ <= 1)
            return;
        workers_.reserve(target_ - 1);
        for (size_t i = 0; i + 1 < target_; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    void
    stopWorkers() OLIVE_EXCLUDES(apiMutex_)
    {
        const MutexLock lock(apiMutex_);
        stopWorkersLocked();
    }

    void
    stopWorkersLocked() OLIVE_REQUIRES(apiMutex_)
    {
        if (workers_.empty())
            return;
        {
            const MutexLock job_lock(jobMutex_);
            stop_ = true;
        }
        jobCv_.notifyAll();
        for (std::thread &w : workers_)
            w.join();
        workers_.clear();
        {
            const MutexLock job_lock(jobMutex_);
            stop_ = false;
        }
    }

    void
    workerLoop() OLIVE_EXCLUDES(jobMutex_)
    {
        u64 seen = 0;
        for (;;) {
            u64 gen;
            {
                MutexLock job_lock(jobMutex_);
                jobCv_.wait(job_lock,
                            [this, seen]() OLIVE_REQUIRES(jobMutex_) {
                                return stop_ ||
                                       (generation_ != seen && job_.fn);
                            });
                if (stop_)
                    return;
                gen = generation_;
            }
            seen = gen;
            work(gen);
        }
    }

    /** Execute chunks of job @p gen until its cursor drains. */
    void
    work(u64 gen) OLIVE_EXCLUDES(jobMutex_)
    {
        for (;;) {
            size_t b, e;
            const std::function<void(size_t, size_t)> *fn;
            {
                const MutexLock job_lock(jobMutex_);
                if (generation_ != gen || !job_.fn ||
                    job_.nextChunk >= job_.chunks)
                    return;
                const size_t c = job_.nextChunk++;
                b = job_.begin + c * job_.grain;
                e = std::min(job_.end, b + job_.grain);
                fn = job_.fn;
            }
            try {
                RegionGuard region;
                (*fn)(b, e);
            } catch (...) {
                const MutexLock job_lock(jobMutex_);
                if (generation_ == gen && !job_.error)
                    job_.error = std::current_exception();
            }
            {
                const MutexLock job_lock(jobMutex_);
                if (generation_ == gen &&
                    ++job_.doneChunks == job_.chunks)
                    doneCv_.notifyAll();
            }
        }
    }

    Mutex apiMutex_; //!< Serializes regions and resizes.
    /** Pool size (workers_ plus the caller). */
    size_t target_ OLIVE_GUARDED_BY(apiMutex_);
    std::atomic<size_t> targetMirror_; //!< Lock-free copy for threads().
    std::vector<std::thread> workers_ OLIVE_GUARDED_BY(apiMutex_);

    Mutex jobMutex_;   //!< Guards every field below.
    CondVar jobCv_;    //!< Wakes workers for a new job.
    CondVar doneCv_;   //!< Wakes the caller on completion.
    u64 generation_ OLIVE_GUARDED_BY(jobMutex_) = 0;
    bool stop_ OLIVE_GUARDED_BY(jobMutex_) = false;
    Job job_ OLIVE_GUARDED_BY(jobMutex_);
};

} // namespace

size_t
threadCount()
{
    return Pool::instance().threads();
}

void
setThreadCount(size_t n)
{
    Pool::instance().resize(n);
}

bool
inParallelRegion()
{
    return tls_in_region;
}

size_t
parseThreadCount(const char *s, const char *what)
{
    // Far beyond any useful pool size, but small enough that a typo
    // dies here as fatal() instead of as a failed thread spawn.
    constexpr long kMaxThreads = 4096;
    char *endp = nullptr;
    errno = 0;
    const long v = std::strtol(s, &endp, 10);
    if (endp == s || *endp != '\0' || errno == ERANGE || v < 0 ||
        v > kMaxThreads) {
        OLIVE_FATAL(std::string(what) + " must be an integer in [0, " +
                    std::to_string(kMaxThreads) + "], got \"" + s + "\"");
    }
    return static_cast<size_t>(v);
}

void
parallelFor(size_t begin, size_t end, size_t grain,
            const std::function<void(size_t, size_t)> &fn)
{
    if (end <= begin)
        return;
    if (grain == 0)
        grain = 1;
    // Nested regions run serially on the issuing thread: same chunks,
    // same results, no deadlock (the enclosing region holds the pool).
    if (tls_in_region) {
        runChunksSerial(begin, end, grain, fn);
        return;
    }
    Pool::instance().run(begin, end, grain, fn);
}

} // namespace par
} // namespace olive
