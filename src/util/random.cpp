#include "random.hpp"

#include <cmath>

namespace olive {

namespace {

/** SplitMix64 step, used only for seeding. */
u64
splitmix64(u64 &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(u64 seed)
{
    u64 sm = seed;
    for (auto &s : state_)
        s = splitmix64(sm);
}

u64
Rng::next()
{
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

u64
Rng::uniformInt(u64 n)
{
    OLIVE_ASSERT(n > 0, "uniformInt range must be positive");
    // Rejection sampling to avoid modulo bias.
    const u64 limit = ~u64{0} - (~u64{0} % n);
    u64 v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    hasSpare_ = true;
    return u * mul;
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Rng::heavyTail(double outlier_prob, double outlier_lo_sigma,
               double outlier_hi_sigma)
{
    if (uniform() >= outlier_prob)
        return gaussian();
    // Outlier magnitude: exponential profile between the two bounds so
    // that most outliers hug the low end while a few reach the maximum,
    // matching the Fig. 2 Max-sigma profile of transformer tensors.
    const double span = outlier_hi_sigma - outlier_lo_sigma;
    const double frac = -std::log(1.0 - uniform() * (1.0 - 1e-4)) / 9.2;
    const double mag = outlier_lo_sigma + span * std::min(1.0, frac);
    const double sign = (uniform() < 0.5) ? -1.0 : 1.0;
    return sign * mag;
}

void
Rng::fillGaussian(std::vector<float> &out, double mean, double stddev)
{
    for (auto &v : out)
        v = static_cast<float>(gaussian(mean, stddev));
}

std::vector<size_t>
Rng::permutation(size_t n)
{
    std::vector<size_t> p(n);
    for (size_t i = 0; i < n; ++i)
        p[i] = i;
    for (size_t i = n; i > 1; --i) {
        const size_t j = static_cast<size_t>(uniformInt(i));
        std::swap(p[i - 1], p[j]);
    }
    return p;
}

} // namespace olive
