#include "common.hpp"

namespace olive {
namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s:%d: %s\n", file, line, msg.c_str());
    std::exit(1);
}

} // namespace detail
} // namespace olive
