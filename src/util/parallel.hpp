/**
 * @file
 * Deterministic parallel execution engine.
 *
 * A lazily-initialized global thread pool drives parallelFor(), which
 * splits an index range [begin, end) into fixed-size chunks of `grain`
 * indices and hands every chunk to exactly one invocation of the
 * callback.  Chunk boundaries depend only on (begin, end, grain) —
 * never on the thread count or on runtime scheduling — so any kernel
 * whose per-index work is a pure function of that index's inputs
 * produces bit-identical results at every thread count, including 1.
 * That property is what keeps quantization and the transformer forward
 * bit-exact under parallel execution (the CTest "determinism" legs
 * assert it).
 *
 * Reductions stay deterministic by the same construction: accumulate
 * one partial per chunk (indexed via chunkIndex()) and combine the
 * partials in chunk order after the loop returns.
 *
 * The pool size comes from the OLIVE_THREADS environment variable
 * (default: hardware_concurrency(); 1 forces fully serial execution;
 * 0 or unset selects the hardware default) and can be changed between
 * parallel regions with setThreadCount() — util/args wires a --threads
 * flag into every driver, and the scaling bench sweeps it.  A
 * parallelFor() issued from inside another parallelFor chunk (nested
 * parallelism — on a worker or on the participating caller) runs
 * serially on the issuing thread, so composed parallel code cannot
 * deadlock or oversubscribe.
 *
 * Do not OLIVE_FATAL inside a parallel kernel: fatal() runs static
 * destructors from the calling thread, and a worker cannot join itself.
 * Internal invariants should use OLIVE_ASSERT (abort) as usual.
 */

#ifndef OLIVE_UTIL_PARALLEL_HPP
#define OLIVE_UTIL_PARALLEL_HPP

#include <cstddef>
#include <functional>

namespace olive {
namespace par {

/** Environment variable that selects the worker-thread count. */
inline constexpr const char *kThreadsEnv = "OLIVE_THREADS";

/**
 * Threads the pool will use: the last setThreadCount() value, else
 * OLIVE_THREADS, else hardware_concurrency().  Never zero.  Lock-free,
 * so kernels may call it from inside a parallel region.
 */
size_t threadCount();

/**
 * Resize the pool to @p n threads (0 = the ambient default:
 * OLIVE_THREADS if set, else hardware concurrency).  Existing
 * workers are joined first; call it only between parallel regions —
 * calling from inside a kernel is asserted against (it would deadlock
 * the pool that is running the kernel).  Results of parallelFor
 * kernels are unaffected by construction — this only changes how fast
 * they run.
 */
void setThreadCount(size_t n);

/**
 * True while this thread is executing a parallelFor chunk (worker or
 * participating caller).  A parallelFor issued in that state runs its
 * chunks inline on the issuing thread.
 */
bool inParallelRegion();

/**
 * Parse a thread-count string for setThreadCount(): a non-negative
 * integer, 0 meaning "ambient default", capped at a sanity limit.
 * fatal() on anything else, naming @p what (the flag or variable the
 * string came from).  Shared by OLIVE_THREADS and --threads so the two
 * spellings cannot drift.
 */
size_t parseThreadCount(const char *s, const char *what);

/**
 * Invoke @p fn once per chunk of [begin, end), where chunk c covers
 * [begin + c*grain, min(begin + (c+1)*grain, end)).  Chunks may run on
 * any thread in any order, but the chunk partition itself is a pure
 * function of (begin, end, grain).  @p grain == 0 is treated as 1.
 * Blocks until every chunk has finished; the first exception thrown by
 * a chunk (if any) is rethrown on the calling thread after the loop
 * drains.
 */
void parallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)> &fn);

/** Number of chunks parallelFor() will produce for this range. */
constexpr size_t
chunkCount(size_t begin, size_t end, size_t grain)
{
    if (end <= begin)
        return 0;
    const size_t g = grain ? grain : 1;
    return (end - begin + g - 1) / g;
}

/** Chunk index of @p chunk_begin within a parallelFor over @p begin. */
constexpr size_t
chunkIndex(size_t begin, size_t grain, size_t chunk_begin)
{
    const size_t g = grain ? grain : 1;
    return (chunk_begin - begin) / g;
}

} // namespace par
} // namespace olive

#endif // OLIVE_UTIL_PARALLEL_HPP
