/**
 * @file
 * Descriptive statistics and error metrics used throughout the
 * quantization framework and the evaluation harness.
 */

#ifndef OLIVE_UTIL_STATS_HPP
#define OLIVE_UTIL_STATS_HPP

#include <cstddef>
#include <span>
#include <vector>

namespace olive {
namespace stats {

/** Arithmetic mean; 0 for an empty span. */
double mean(std::span<const float> xs);

/** Population standard deviation; 0 for spans shorter than 2. */
double stddev(std::span<const float> xs);

/** Largest absolute value; 0 for an empty span. */
double absMax(std::span<const float> xs);

/** Fraction of values with |x - mean| > k * sigma. */
double outlierRatio(std::span<const float> xs, double k_sigma);

/**
 * Outlier-robust standard deviation estimate via the median absolute
 * deviation: sigma ~= MAD / 0.6745 for a Gaussian bulk.  Unlike
 * stddev(), a handful of 300-sigma outliers barely move it, which makes
 * it the right seed for the OliVe threshold search on extreme tensors.
 */
double robustSigma(std::span<const float> xs);

/** Mean squared error between two equally sized spans. */
double mse(std::span<const float> a, std::span<const float> b);

/** Mean absolute error between two equally sized spans. */
double mae(std::span<const float> a, std::span<const float> b);

/**
 * Signal-to-quantization-noise ratio in dB:
 * 10*log10(sum(ref^2) / sum((ref-q)^2)).  Returns +inf for a perfect
 * reconstruction.
 */
double sqnrDb(std::span<const float> ref, std::span<const float> quant);

/** Geometric mean of strictly positive values. */
double geomean(std::span<const double> xs);

/** p-th percentile (0..100) via linear interpolation on a sorted copy. */
double percentile(std::span<const float> xs, double p);

/** Pearson correlation coefficient of two equally sized spans. */
double pearson(std::span<const float> a, std::span<const float> b);

/**
 * Matthews correlation coefficient for binary predictions, the CoLA
 * metric.  Inputs are 0/1 labels.
 */
double matthews(std::span<const int> pred, std::span<const int> truth);

/** Classification accuracy in percent. */
double accuracyPct(std::span<const int> pred, std::span<const int> truth);

/** F1 score (binary, positive class = 1) in percent. */
double f1Pct(std::span<const int> pred, std::span<const int> truth);

/** Simple fixed-width histogram. */
struct Histogram
{
    double lo = 0.0;           //!< Left edge of the first bin.
    double hi = 0.0;           //!< Right edge of the last bin.
    std::vector<size_t> bins;  //!< Counts per bin.
    size_t underflow = 0;      //!< Count below lo.
    size_t overflow = 0;       //!< Count at or above hi.

    /** Total number of recorded samples. */
    size_t total() const;
};

/** Build a histogram of @p xs over [lo, hi) with @p nbins bins. */
Histogram histogram(std::span<const float> xs, double lo, double hi,
                    size_t nbins);

} // namespace stats
} // namespace olive

#endif // OLIVE_UTIL_STATS_HPP
