/**
 * @file
 * Smoke-test mode for the bench and example drivers.
 *
 * When the OLIVE_SMOKE environment variable is set (to anything but
 * "0"), drivers shrink their workloads — fewer models, tasks, seeds and
 * samples — so that every driver binary can be executed in CI in
 * seconds.  The numbers printed in smoke mode are NOT comparable to the
 * paper; the mode exists purely so the drivers cannot silently rot at
 * runtime.  CTest registers every bench/example under the "smoke"
 * label with OLIVE_SMOKE=1 (see the root CMakeLists.txt).
 */

#ifndef OLIVE_UTIL_SMOKE_HPP
#define OLIVE_UTIL_SMOKE_HPP

#include <cstddef>

namespace olive {
namespace smoke {

/** True when OLIVE_SMOKE is set to a non-empty value other than "0". */
bool enabled();

/** @p full normally; @p quick when smoke mode is active. */
size_t count(size_t full, size_t quick);

/**
 * Print a reduced-workload warning banner if smoke mode is active, and
 * the parallel-pool size when more than one thread is in use.
 */
void banner();

} // namespace smoke
} // namespace olive

#endif // OLIVE_UTIL_SMOKE_HPP
