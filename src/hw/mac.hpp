/**
 * @file
 * The OliVe MAC datapath (Secs. 4.4, 4.5).
 *
 * After decoding, every operand is an exponent-integer pair; a product
 * is computed with a fixed-point multiplier and a shifter
 * (<a,b> x <c,d> = <a+c, b*d>) and accumulated into a 32-bit integer.
 * The 8-bit paths (int8 and 8-bit abfloat) are composed from four 4-bit
 * PEs by nibble splitting, exactly as Sec. 4.5 describes; the
 * accumulator-overflow rule clips outlier integers at 2^15.
 */

#ifndef OLIVE_HW_MAC_HPP
#define OLIVE_HW_MAC_HPP

#include <span>

#include "quant/expint.hpp"
#include "util/common.hpp"

namespace olive {
namespace hw {

/** Scalar MAC with an int32 accumulator. */
class MacUnit
{
  public:
    /** Reset the accumulator to @p value. */
    void reset(i32 value = 0) { acc_ = value; }

    /** Accumulated value. */
    i32 value() const { return acc_; }

    /** acc += a * b via the shift-multiply product rule. */
    void mac(const ExpInt &a, const ExpInt &b);

    /** Number of accumulations performed since construction. */
    u64 opCount() const { return ops_; }

  private:
    i32 acc_ = 0;
    u64 ops_ = 0;
};

/**
 * N-element dot product unit (the 16EDP / 8EDP blocks of Fig. 6a):
 * products are formed pairwise and reduced through an adder tree into a
 * 32-bit result.
 */
i32 dotProduct(std::span<const ExpInt> a, std::span<const ExpInt> b);

/**
 * Multiply two int8 values using four 4-bit PEs by nibble splitting
 * (Sec. 4.5): x = <4, hx> + <0, lx>.  Returns the exact 16-bit product
 * as an i32, and reports the four partial products via @p partials if
 * non-null.
 */
i32 mul8ViaFour4(i8 x, i8 y, i32 partials[4] = nullptr);

/**
 * Multiply two decoded 8-bit abfloat operands (exponent-integer pairs
 * with up to 4-bit-wide exponents and 4-bit mantissa integers) using the
 * same four-PE composition with the extra exponent shift.
 */
i64 mulAbfloat8ViaFour4(const ExpInt &x, const ExpInt &y);

/** The Sec. 4.5 outlier clip bound: |integer| <= 2^15. */
constexpr i32 kOutlierClip = 1 << 15;

} // namespace hw
} // namespace olive

#endif // OLIVE_HW_MAC_HPP
