#include "area.hpp"

#include <cmath>

namespace olive {
namespace hw {

double
Component::totalMm2() const
{
    return unitAreaUm2 * static_cast<double>(count) * 1e-6;
}

double
scaleArea(double area_um2, int from_nm, int to_nm)
{
    if (from_nm == to_nm)
        return area_um2;
    // Calibrate the per-node-ratio exponent on the published pair:
    // 37.22 um^2 @ 22 nm -> 13.53 um^2 @ 12 nm.
    const double k = std::log(13.53 / 37.22) / std::log(12.0 / 22.0);
    return area_um2 *
           std::pow(static_cast<double>(to_nm) / from_nm, k);
}

double
AreaBreakdown::totalMm2() const
{
    double t = 0.0;
    for (const auto &c : components)
        t += c.totalMm2();
    return t;
}

double
AreaBreakdown::ratioOf(size_t idx) const
{
    OLIVE_ASSERT(idx < components.size(), "component index out of range");
    const double total = totalMm2();
    return total > 0.0 ? components[idx].totalMm2() / total : 0.0;
}

double
AreaBreakdown::ratioOf(size_t idx, double reference_mm2) const
{
    OLIVE_ASSERT(idx < components.size(), "component index out of range");
    return components[idx].totalMm2() / reference_mm2;
}

AreaBreakdown
gpuDecoderBreakdown()
{
    AreaBreakdown b;
    b.components.push_back({"4-bit Decoder", Area12nm::kDecoder4, 139264});
    b.components.push_back({"8-bit Decoder", Area12nm::kDecoder8, 69632});
    return b;
}

AreaBreakdown
systolicBreakdown()
{
    AreaBreakdown b;
    b.components.push_back({"4-bit Decoder", Area22nm::kDecoder4, 128});
    b.components.push_back({"8-bit Decoder", Area22nm::kDecoder8, 64});
    b.components.push_back({"4-bit PE", Area22nm::kPe4, 4096});
    return b;
}

} // namespace hw
} // namespace olive
