#include "mac.hpp"

#include <vector>

namespace olive {
namespace hw {

void
MacUnit::mac(const ExpInt &a, const ExpInt &b)
{
    const ExpInt p = a * b;
    // The product of two clipped outliers fits in int32 (Sec. 4.5:
    // operands are clipped to 2^15 < sqrt(2^31 - 1)).
    const i64 shifted = p.value();
    OLIVE_ASSERT(shifted >= INT32_MIN && shifted <= INT32_MAX,
                 "MAC product overflows the int32 accumulator");
    acc_ += static_cast<i32>(shifted);
    ++ops_;
}

i32
dotProduct(std::span<const ExpInt> a, std::span<const ExpInt> b)
{
    OLIVE_ASSERT(a.size() == b.size(), "EDP operands must match");
    // Adder-tree reduction: form all products, then reduce pairwise.
    std::vector<i64> terms(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        terms[i] = (a[i] * b[i]).value();
    size_t n = terms.size();
    while (n > 1) {
        const size_t half = (n + 1) / 2;
        for (size_t i = 0; i < n / 2; ++i)
            terms[i] = terms[2 * i] + terms[2 * i + 1];
        if (n % 2)
            terms[n / 2] = terms[n - 1];
        n = half;
    }
    const i64 result = terms.empty() ? 0 : terms[0];
    OLIVE_ASSERT(result >= INT32_MIN && result <= INT32_MAX,
                 "EDP result overflows int32");
    return static_cast<i32>(result);
}

i32
mul8ViaFour4(i8 x, i8 y, i32 partials[4])
{
    // Split into signed high nibble and unsigned low nibble:
    // x = (hx << 4) + lx with hx = x >> 4 (arithmetic), lx = x & 0xF.
    const i32 hx = x >> 4;
    const i32 lx = x & 0xF;
    const i32 hy = y >> 4;
    const i32 ly = y & 0xF;

    const i32 p0 = (hx * hy) << 8; // <4,hx> * <4,hy>
    const i32 p1 = (hx * ly) << 4; // <4,hx> * <0,ly>
    const i32 p2 = (lx * hy) << 4; // <0,lx> * <4,hy>
    const i32 p3 = lx * ly;        // <0,lx> * <0,ly>
    if (partials) {
        partials[0] = p0;
        partials[1] = p1;
        partials[2] = p2;
        partials[3] = p3;
    }
    return p0 + p1 + p2 + p3;
}

i64
mulAbfloat8ViaFour4(const ExpInt &x, const ExpInt &y)
{
    // z = <4 + ez, hz> + <ez, lz> with iz = (hz << 4) + lz.
    const i32 hx = x.integer >> 4;
    const i32 lx = x.integer & 0xF;
    const i32 hy = y.integer >> 4;
    const i32 ly = y.integer & 0xF;
    const int ex = x.exponent;
    const int ey = y.exponent;

    const i64 p0 = static_cast<i64>(hx * hy) << (8 + ex + ey);
    const i64 p1 = static_cast<i64>(hx * ly) << (4 + ex + ey);
    const i64 p2 = static_cast<i64>(lx * hy) << (4 + ex + ey);
    const i64 p3 = static_cast<i64>(lx * ly) << (ex + ey);
    return p0 + p1 + p2 + p3;
}

} // namespace hw
} // namespace olive
