/**
 * @file
 * The OVP instruction set extension (Sec. 4.6).
 *
 * The Turing baseline exposes mma.s32.s4.s4.s32 (D = A x B + C with
 * int4 operand tiles and int32 accumulators).  OliVe adds
 * mmaovp.s32.<atype>.<btype>.s32.<bias> whose operand tiles are packed
 * OVP byte streams.  This module describes the instruction encodings
 * and provides a functional executor used by the tests: it pushes the
 * packed tiles through the bit-exact OVP decoders and the ExpInt MAC
 * path, returning int32 accumulator tiles.
 */

#ifndef OLIVE_HW_ISA_HPP
#define OLIVE_HW_ISA_HPP

#include <string>
#include <vector>

#include "decoder.hpp"
#include "util/common.hpp"

namespace olive {
namespace hw {

/** Operand type of an mmaovp instruction. */
enum class OvpOperandType
{
    OvpInt4,   //!< ovpi4: OVP-packed int4 + E2M1 abfloat outliers.
    OvpFlint4, //!< ovpf4: OVP-packed flint4 + E2M1 abfloat outliers.
    OvpInt8,   //!< ovpi8: OVP-packed int8 + E4M3 abfloat outliers.
    Int4,      //!< Plain s4 (the baseline mma operand).
};

/** Printable mnemonic fragment ("ovpi4", "s4", ...). */
std::string toString(OvpOperandType t);

/** Descriptor of one mma/mmaovp instruction variant. */
struct MmaInstruction
{
    OvpOperandType aType = OvpOperandType::OvpInt4;
    OvpOperandType bType = OvpOperandType::OvpInt4;
    int biasA = -1; //!< Abfloat bias immediate for A (-1 = default).
    int biasB = -1; //!< Abfloat bias immediate for B.
    u64 m = 8, n = 8, kDepth = 16; //!< Tile shape (k must be even).

    /** Full mnemonic, e.g. "mmaovp.s32.ovpi4.ovpf4.s32.s4". */
    std::string mnemonic() const;
};

/**
 * Functional executor: D = A x B + C on packed tiles.
 *
 * @param inst    The instruction variant (tile shape, operand types).
 * @param a_bytes Packed A tile, row-major, m rows of kDepth values.
 * @param b_bytes Packed B tile, column-major, n columns of kDepth values.
 * @param c       Accumulator tile (m x n, row-major); may be empty for 0.
 * @return        The m x n int32 result tile.
 */
std::vector<i32> executeMma(const MmaInstruction &inst,
                            const std::vector<u8> &a_bytes,
                            const std::vector<u8> &b_bytes,
                            const std::vector<i32> &c = {});

/** NormalType underlying an OVP operand type. */
NormalType normalTypeOf(OvpOperandType t);

} // namespace hw
} // namespace olive

#endif // OLIVE_HW_ISA_HPP
