/**
 * @file
 * Functional model of the OliVe-extended GPU tensor core (Fig. 6a).
 *
 * A Turing-style tensor core contains two octets; each octet contains
 * eight dot-product units.  At 4-bit precision each unit is a 16EDP
 * (16-element dot product) fed by a pair of OVP decoders; at 8-bit it
 * is an 8EDP.  The core consumes packed OVP operand tiles from its
 * buffers, decodes at the operand registers, reduces through the adder
 * tree, and accumulates into int32 — this model executes that structure
 * faithfully (unit-by-unit, cycle-batched), which lets the tests verify
 * the datapath organization against the flat ISA executor.
 */

#ifndef OLIVE_HW_TENSOR_CORE_HPP
#define OLIVE_HW_TENSOR_CORE_HPP

#include <vector>

#include "decoder.hpp"
#include "util/common.hpp"

namespace olive {
namespace hw {

/** Execution statistics of one tensor-core tile operation. */
struct TensorCoreStats
{
    u64 edpIssues = 0;     //!< Dot-product unit issues.
    u64 decodeOps = 0;     //!< OVP pair decodes performed.
    u64 macs = 0;          //!< Multiply-accumulates executed.
    u64 octetCycles = 0;   //!< Cycles with both octets busy.
};

/** The OliVe tensor core: two octets of EDP units with OVP decoders. */
class TensorCore
{
  public:
    /**
     * @param normal Operand data type (sets EDP width: 4-bit types use
     *        16EDP, int8 uses 8EDP, per Fig. 6a).
     * @param bias   Abfloat bias register; -1 = complementary default.
     */
    explicit TensorCore(NormalType normal, int bias = -1);

    /** Elements consumed per EDP issue (16 at 4-bit, 8 at 8-bit). */
    size_t edpWidth() const { return edpWidth_; }

    /** Dot-product units per octet (Turing: 8). */
    static constexpr size_t kUnitsPerOctet = 8;
    static constexpr size_t kOctets = 2;

    /**
     * Execute D = A x B + C on packed OVP tiles.
     * A: m rows of k packed values (row-major); B: n columns of k
     * packed values (column-major); C: optional m x n int32.
     * k must be a multiple of the EDP width.
     */
    std::vector<i32> mma(size_t m, size_t n, size_t k,
                         const std::vector<u8> &a_bytes,
                         const std::vector<u8> &b_bytes,
                         const std::vector<i32> &c = {},
                         TensorCoreStats *stats = nullptr) const;

  private:
    NormalType normal_;
    OvpDecoder decoder_;
    size_t edpWidth_;
    size_t bytesPerPair_;
};

} // namespace hw
} // namespace olive

#endif // OLIVE_HW_TENSOR_CORE_HPP
