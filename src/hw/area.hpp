/**
 * @file
 * Area and power model (paper Tables 10 and 11).
 *
 * The component areas are the paper's synthesized numbers (Synopsys DC,
 * 22 nm TSMC, scaled to 12 nm for the GPU with DeepScaleTool); this
 * module models composition — component counts, totals, and ratios —
 * plus a technology-scaling helper calibrated on the published
 * 22 nm -> 12 nm decoder pair.
 */

#ifndef OLIVE_HW_AREA_HPP
#define OLIVE_HW_AREA_HPP

#include <string>
#include <vector>

#include "util/common.hpp"

namespace olive {
namespace hw {

/** One hardware component with a unit area. */
struct Component
{
    std::string name;
    double unitAreaUm2 = 0.0; //!< Area of one instance in um^2.
    u64 count = 0;

    /** Total area in mm^2. */
    double totalMm2() const;
};

/** Published unit areas at 22 nm (Table 11). */
struct Area22nm
{
    static constexpr double kDecoder4 = 37.22; //!< 4-bit OVP decoder um^2.
    static constexpr double kDecoder8 = 49.50; //!< 8-bit OVP decoder um^2.
    static constexpr double kPe4 = 50.01;      //!< 4-bit PE um^2.
};

/** Published unit areas at 12 nm (Table 10). */
struct Area12nm
{
    static constexpr double kDecoder4 = 13.53;
    static constexpr double kDecoder8 = 18.00;
};

/**
 * Scale an area between technology nodes with the DeepScaleTool-style
 * factor calibrated on the published decoder pair
 * (13.53 / 37.22 at 22 -> 12 nm).
 */
double scaleArea(double area_um2, int from_nm, int to_nm);

/** A named area breakdown (one table row set). */
struct AreaBreakdown
{
    std::vector<Component> components;

    double totalMm2() const;

    /** Ratio of component @p idx to the breakdown total. */
    double ratioOf(size_t idx) const;

    /** Ratio of component @p idx to an external reference area. */
    double ratioOf(size_t idx, double reference_mm2) const;
};

/**
 * Table 10: OliVe decoders on an RTX 2080 Ti (12 nm, 754 mm^2 die):
 * 139,264 4-bit decoders and 69,632 8-bit decoders.
 */
AreaBreakdown gpuDecoderBreakdown();

/** RTX 2080 Ti die area in mm^2. */
constexpr double kTuringDieMm2 = 754.0;

/**
 * Table 11: the OliVe systolic array at 22 nm: 128 4-bit decoders, 64
 * 8-bit decoders, 4096 4-bit PEs.
 */
AreaBreakdown systolicBreakdown();

} // namespace hw
} // namespace olive

#endif // OLIVE_HW_AREA_HPP
