#include "systolic_pe.hpp"

#include <algorithm>

#include "mac.hpp"
#include "util/bitops.hpp"

namespace olive {
namespace hw {

SystolicArray::SystolicArray(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), acc_(rows * cols, 0)
{
    OLIVE_ASSERT(rows > 0 && cols > 0, "array must be non-empty");
}

u64
SystolicArray::runGemm(const std::vector<std::vector<ExpInt>> &a,
                       const std::vector<std::vector<ExpInt>> &b)
{
    OLIVE_ASSERT(a.size() == rows_, "A row count must match array rows");
    const size_t depth = a.empty() ? 0 : a[0].size();
    OLIVE_ASSERT(b.size() == depth, "B depth must match A depth");
    for (const auto &row : a)
        OLIVE_ASSERT(row.size() == depth, "ragged A operand");
    for (const auto &row : b)
        OLIVE_ASSERT(row.size() == cols_, "B col count must match array");

    std::fill(acc_.begin(), acc_.end(), 0);

    // Skewed wavefront: at cycle t, PE (r, c) consumes A(r, t - r - c)
    // and B(t - r - c, c).  Simulating the registers explicitly:
    // a_reg[r][c] holds the A value currently at PE (r, c), moving
    // right; b_reg likewise moving down.
    const ExpInt zero{0, 0};
    std::vector<std::vector<ExpInt>> a_reg(rows_,
        std::vector<ExpInt>(cols_, zero));
    std::vector<std::vector<ExpInt>> b_reg(rows_,
        std::vector<ExpInt>(cols_, zero));
    std::vector<std::vector<bool>> a_valid(rows_,
        std::vector<bool>(cols_, false));
    std::vector<std::vector<bool>> b_valid(rows_,
        std::vector<bool>(cols_, false));

    const u64 total_cycles = depth + rows_ + cols_ - 1;
    for (u64 t = 0; t < total_cycles; ++t) {
        // Shift right/down from the far corner to avoid overwriting.
        for (size_t r = rows_; r-- > 0;) {
            for (size_t c = cols_; c-- > 0;) {
                if (c > 0) {
                    a_reg[r][c] = a_reg[r][c - 1];
                    a_valid[r][c] = a_valid[r][c - 1];
                }
                if (r > 0) {
                    b_reg[r][c] = b_reg[r - 1][c];
                    b_valid[r][c] = b_valid[r - 1][c];
                }
            }
        }
        // Inject skewed borders: row r receives A(r, t - r).
        for (size_t r = 0; r < rows_; ++r) {
            const i64 idx = static_cast<i64>(t) - static_cast<i64>(r);
            if (idx >= 0 && idx < static_cast<i64>(depth)) {
                a_reg[r][0] = a[r][static_cast<size_t>(idx)];
                a_valid[r][0] = true;
            } else {
                a_valid[r][0] = false;
            }
        }
        for (size_t c = 0; c < cols_; ++c) {
            const i64 idx = static_cast<i64>(t) - static_cast<i64>(c);
            if (idx >= 0 && idx < static_cast<i64>(depth)) {
                b_reg[0][c] = b[static_cast<size_t>(idx)][c];
                b_valid[0][c] = true;
            } else {
                b_valid[0][c] = false;
            }
        }
        // MAC where both operands are valid.
        for (size_t r = 0; r < rows_; ++r) {
            for (size_t c = 0; c < cols_; ++c) {
                if (a_valid[r][c] && b_valid[r][c]) {
                    const i64 p = (a_reg[r][c] * b_reg[r][c]).value();
                    acc_[r * cols_ + c] += static_cast<i32>(p);
                }
            }
        }
    }
    return total_cycles;
}

i32
SystolicArray::result(size_t r, size_t c) const
{
    OLIVE_ASSERT(r < rows_ && c < cols_, "result index out of range");
    return acc_[r * cols_ + c];
}

std::vector<i32>
systolicMatmulOvp(const OvpDecoder &dec, size_t rows, size_t depth,
                  size_t cols, const std::vector<u8> &a_bytes,
                  const std::vector<u8> &b_bytes, u64 *cycles)
{
    OLIVE_ASSERT(depth % 2 == 0, "OVP streams carry whole pairs");
    const size_t is8 = bitWidth(dec.normalType()) == 8;
    const size_t bytes_per_pair = is8 ? 2 : 1;
    const size_t pairs_per_vec = depth / 2;
    OLIVE_ASSERT(a_bytes.size() == rows * pairs_per_vec * bytes_per_pair,
                 "A stream size mismatch");
    OLIVE_ASSERT(b_bytes.size() == cols * pairs_per_vec * bytes_per_pair,
                 "B stream size mismatch");

    auto decodeVec = [&](const std::vector<u8> &bytes, size_t vec) {
        std::vector<ExpInt> out(depth);
        for (size_t p = 0; p < pairs_per_vec; ++p) {
            DecodedPair d;
            const size_t base = (vec * pairs_per_vec + p) * bytes_per_pair;
            if (is8)
                d = dec.decodeBytes(bytes[base], bytes[base + 1]);
            else
                d = dec.decodeByte(bytes[base]);
            out[2 * p] = d.first;
            out[2 * p + 1] = d.second;
        }
        return out;
    };

    std::vector<std::vector<ExpInt>> a(rows);
    for (size_t r = 0; r < rows; ++r)
        a[r] = decodeVec(a_bytes, r);

    // B arrives column-major: one packed vector per output column.
    std::vector<std::vector<ExpInt>> b(depth, std::vector<ExpInt>(cols));
    for (size_t c = 0; c < cols; ++c) {
        const auto col = decodeVec(b_bytes, c);
        for (size_t d = 0; d < depth; ++d)
            b[d][c] = col[d];
    }

    SystolicArray array(rows, cols);
    const u64 cyc = array.runGemm(a, b);
    if (cycles)
        *cycles = cyc;

    std::vector<i32> out(rows * cols);
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            out[r * cols + c] = array.result(r, c);
    return out;
}

} // namespace hw
} // namespace olive
