/**
 * @file
 * Cycle-accurate functional model of the output-stationary systolic
 * array of Sec. 4.3.
 *
 * A operands stream in from the left edge, B operands from the top
 * edge; each PE multiplies the operands passing through it and
 * accumulates into its stationary output register.  OVP decoders sit
 * only on the two borders (n + m decoders instead of n x m, the
 * systolic advantage the paper calls out), so the array interior works
 * purely on exponent-integer pairs.
 *
 * This model verifies the dataflow at small sizes; the performance
 * simulator (src/sim/systolic.hpp) models timing and energy at full
 * scale analytically.
 */

#ifndef OLIVE_HW_SYSTOLIC_PE_HPP
#define OLIVE_HW_SYSTOLIC_PE_HPP

#include <vector>

#include "decoder.hpp"
#include "quant/expint.hpp"
#include "util/common.hpp"

namespace olive {
namespace hw {

/** Output-stationary systolic array of ExpInt MAC PEs. */
class SystolicArray
{
  public:
    /** @param rows, cols Array dimensions. */
    SystolicArray(size_t rows, size_t cols);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    /** Border decoder count: rows + cols (Sec. 4.3). */
    size_t decoderCount() const { return rows_ + cols_; }

    /**
     * Stream a full GEMM through the array cycle by cycle:
     * C(rows, cols) = A(rows, depth) * B(depth, cols), with operands
     * supplied as decoded exponent-integer pairs.  Returns the cycle
     * count consumed (depth + rows + cols - 2 wavefront latency plus a
     * drain cycle).
     */
    u64 runGemm(const std::vector<std::vector<ExpInt>> &a,
                const std::vector<std::vector<ExpInt>> &b);

    /** Stationary accumulator value at (r, c) after runGemm. */
    i32 result(size_t r, size_t c) const;

  private:
    size_t rows_;
    size_t cols_;
    std::vector<i32> acc_;
};

/**
 * End-to-end helper: decode two packed OVP byte streams at the array
 * borders and run the GEMM.  @p a_bytes is (rows x depth) values packed
 * as OVP pairs row-major; @p b_bytes is (depth x cols) packed column-
 * major so each column streams through one top decoder.  Returns the
 * int32 result matrix (row-major).
 */
std::vector<i32> systolicMatmulOvp(const OvpDecoder &dec, size_t rows,
                                   size_t depth, size_t cols,
                                   const std::vector<u8> &a_bytes,
                                   const std::vector<u8> &b_bytes,
                                   u64 *cycles = nullptr);

} // namespace hw
} // namespace olive

#endif // OLIVE_HW_SYSTOLIC_PE_HPP
