#include "tensor_core.hpp"

#include "mac.hpp"

namespace olive {
namespace hw {

TensorCore::TensorCore(NormalType normal, int bias)
    : normal_(normal),
      decoder_(normal, bias),
      edpWidth_(bitWidth(normal) == 4 ? 16 : 8),
      bytesPerPair_(bitWidth(normal) == 4 ? 1 : 2)
{
}

std::vector<i32>
TensorCore::mma(size_t m, size_t n, size_t k,
                const std::vector<u8> &a_bytes,
                const std::vector<u8> &b_bytes,
                const std::vector<i32> &c,
                TensorCoreStats *stats) const
{
    OLIVE_ASSERT(k % edpWidth_ == 0,
                 "k must be a multiple of the EDP width");
    const size_t bytes_per_vec = k / 2 * bytesPerPair_;
    OLIVE_ASSERT(a_bytes.size() == m * bytes_per_vec, "A tile size");
    OLIVE_ASSERT(b_bytes.size() == n * bytes_per_vec, "B tile size");
    OLIVE_ASSERT(c.empty() || c.size() == m * n, "C tile size");

    TensorCoreStats local;

    // Decode whole operand vectors once (operand-register decoders).
    auto decode_vec = [&](const std::vector<u8> &bytes, size_t vec) {
        std::vector<ExpInt> out(k);
        for (size_t p = 0; p < k / 2; ++p) {
            DecodedPair d;
            const size_t base = vec * bytes_per_vec + p * bytesPerPair_;
            if (bytesPerPair_ == 1)
                d = decoder_.decodeByte(bytes[base]);
            else
                d = decoder_.decodeBytes(bytes[base], bytes[base + 1]);
            out[2 * p] = d.first;
            out[2 * p + 1] = d.second;
            ++local.decodeOps;
        }
        return out;
    };

    std::vector<std::vector<ExpInt>> a_rows(m), b_cols(n);
    for (size_t r = 0; r < m; ++r)
        a_rows[r] = decode_vec(a_bytes, r);
    for (size_t col = 0; col < n; ++col)
        b_cols[col] = decode_vec(b_bytes, col);

    // Each output element accumulates k/edpWidth EDP issues; issues are
    // distributed over the two octets of kUnitsPerOctet units each.
    std::vector<i32> d(m * n, 0);
    const size_t chunks = k / edpWidth_;
    u64 issues = 0;
    for (size_t r = 0; r < m; ++r) {
        for (size_t col = 0; col < n; ++col) {
            i64 acc = c.empty() ? 0 : c[r * n + col];
            for (size_t ch = 0; ch < chunks; ++ch) {
                const std::span<const ExpInt> a_part(
                    a_rows[r].data() + ch * edpWidth_, edpWidth_);
                const std::span<const ExpInt> b_part(
                    b_cols[col].data() + ch * edpWidth_, edpWidth_);
                acc += dotProduct(a_part, b_part);
                ++issues;
                local.macs += edpWidth_;
            }
            OLIVE_ASSERT(acc >= INT32_MIN && acc <= INT32_MAX,
                         "tensor core accumulator overflow");
            d[r * n + col] = static_cast<i32>(acc);
        }
    }
    local.edpIssues = issues;
    local.octetCycles =
        (issues + kOctets * kUnitsPerOctet - 1) /
        (kOctets * kUnitsPerOctet);
    if (stats)
        *stats = local;
    return d;
}

} // namespace hw
} // namespace olive
