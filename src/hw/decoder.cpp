#include "decoder.hpp"

#include "quant/ovp.hpp"
#include "util/bitops.hpp"

namespace olive {
namespace hw {

AbfloatDecoder::AbfloatDecoder(int bits, int bias)
    : bits_(bits), bias_(bias)
{
    OLIVE_ASSERT(bits == 4 || bits == 8, "abfloat decoder is 4 or 8 bit");
    OLIVE_ASSERT(bias >= 0, "decoder bias register is unsigned");
}

ExpInt
AbfloatDecoder::decode(u32 code) const
{
    // Field widths: E2M1 for 4-bit, E4M3 for 8-bit.
    const unsigned mant_bits = (bits_ == 4) ? 1u : 3u;
    const unsigned exp_bits = (bits_ == 4) ? 2u : 4u;

    const u32 sign = bits::field(code, exp_bits + mant_bits, 1);
    const u32 exp_field = bits::field(code, mant_bits, exp_bits);
    const u32 mant = bits::field(code, 0, mant_bits);
    const u32 unsigned_code = code & ((1u << (exp_bits + mant_bits)) - 1u);

    ExpInt out;
    if (unsigned_code == 0) {
        // The zero mux path of Fig. 7.
        out.exponent = 0;
        out.integer = 0;
        return out;
    }
    // exponent = bias + exponent field (the adder of Fig. 7).
    out.exponent = static_cast<u8>(bias_ + static_cast<int>(exp_field));
    // integer = (1 mantissa)_2, negated by the sign bit.
    const i32 integer = static_cast<i32>((1u << mant_bits) | mant);
    out.integer = sign ? -integer : integer;
    return out;
}

OvpDecoder::OvpDecoder(NormalType normal, int bias)
    : normal_(normal),
      codec_(normal),
      outlierDecoder_(bitWidth(normal),
                      bias < 0 ? defaultAbfloatBias(normal) : bias)
{
}

ExpInt
OvpDecoder::decodeNormal(u32 code) const
{
    if (code == outlierIdentifier(normal_)) {
        // The "== 1000" comparator of Fig. 6b transforms the identifier
        // into the zero word.
        return ExpInt{0, 0};
    }
    return codec_.decodeExpInt(code);
}

DecodedPair
OvpDecoder::decodeCodes(u32 c0, u32 c1) const
{
    const u32 identifier = outlierIdentifier(normal_);
    DecodedPair out;
    if (c0 == identifier && c1 != identifier) {
        out.first = ExpInt{0, 0};
        out.second = outlierDecoder_.decode(c1);
        out.secondIsOutlier = true;
    } else if (c1 == identifier && c0 != identifier) {
        out.first = outlierDecoder_.decode(c0);
        out.firstIsOutlier = true;
        out.second = ExpInt{0, 0};
    } else {
        // Including the illegal both-identifier pattern, which decodes
        // to zeros exactly like the RTL mux network would.
        out.first = decodeNormal(c0);
        out.second = decodeNormal(c1);
    }
    return out;
}

DecodedPair
OvpDecoder::decodeByte(u8 byte) const
{
    OLIVE_ASSERT(bitWidth(normal_) == 4, "decodeByte needs a 4-bit type");
    return decodeCodes(bits::lowNibble(byte), bits::highNibble(byte));
}

DecodedPair
OvpDecoder::decodeBytes(u8 b0, u8 b1) const
{
    OLIVE_ASSERT(bitWidth(normal_) == 8, "decodeBytes needs an 8-bit type");
    return decodeCodes(b0, b1);
}

} // namespace hw
} // namespace olive
