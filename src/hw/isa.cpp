#include "isa.hpp"

#include "mac.hpp"
#include "quant/ovp.hpp"
#include "util/bitops.hpp"

namespace olive {
namespace hw {

std::string
toString(OvpOperandType t)
{
    switch (t) {
      case OvpOperandType::OvpInt4:
        return "ovpi4";
      case OvpOperandType::OvpFlint4:
        return "ovpf4";
      case OvpOperandType::OvpInt8:
        return "ovpi8";
      case OvpOperandType::Int4:
        return "s4";
    }
    OLIVE_PANIC("unknown OvpOperandType");
}

NormalType
normalTypeOf(OvpOperandType t)
{
    switch (t) {
      case OvpOperandType::OvpInt4:
      case OvpOperandType::Int4:
        return NormalType::Int4;
      case OvpOperandType::OvpFlint4:
        return NormalType::Flint4;
      case OvpOperandType::OvpInt8:
        return NormalType::Int8;
    }
    OLIVE_PANIC("unknown OvpOperandType");
}

std::string
MmaInstruction::mnemonic() const
{
    const bool is_ovp = aType != OvpOperandType::Int4 ||
                        bType != OvpOperandType::Int4;
    std::string name = is_ovp ? "mmaovp" : "mma";
    name += ".s32." + toString(aType) + "." + toString(bType) + ".s32";
    if (is_ovp)
        name += ".s4"; // the bias immediate operand of Sec. 4.6
    return name;
}

namespace {

/** Decode one packed operand vector (kDepth values) to ExpInt. */
std::vector<ExpInt>
decodeVector(OvpOperandType type, int bias, const std::vector<u8> &bytes,
             size_t vec_index, u64 k_depth)
{
    std::vector<ExpInt> out(k_depth);
    if (type == OvpOperandType::Int4) {
        // Plain s4: two values per byte, no OVP semantics.
        const size_t base = vec_index * (k_depth / 2);
        for (size_t i = 0; i < k_depth / 2; ++i) {
            const u8 byte = bytes[base + i];
            out[2 * i] =
                ExpInt{0, bits::signExtend(bits::lowNibble(byte), 4)};
            out[2 * i + 1] =
                ExpInt{0, bits::signExtend(bits::highNibble(byte), 4)};
        }
        return out;
    }

    const NormalType nt = normalTypeOf(type);
    const OvpDecoder dec(nt, bias);
    const size_t bytes_per_pair = (bitWidth(nt) == 8) ? 2 : 1;
    const size_t base = vec_index * (k_depth / 2) * bytes_per_pair;
    for (size_t p = 0; p < k_depth / 2; ++p) {
        DecodedPair d;
        if (bytes_per_pair == 1) {
            d = dec.decodeByte(bytes[base + p]);
        } else {
            d = dec.decodeBytes(bytes[base + 2 * p],
                                bytes[base + 2 * p + 1]);
        }
        out[2 * p] = d.first;
        out[2 * p + 1] = d.second;
    }
    return out;
}

size_t
packedVectorBytes(OvpOperandType type, u64 k_depth)
{
    const NormalType nt = normalTypeOf(type);
    return (bitWidth(nt) == 8) ? k_depth : k_depth / 2;
}

} // namespace

std::vector<i32>
executeMma(const MmaInstruction &inst, const std::vector<u8> &a_bytes,
           const std::vector<u8> &b_bytes, const std::vector<i32> &c)
{
    OLIVE_ASSERT(inst.kDepth % 2 == 0, "mma depth must be even");
    OLIVE_ASSERT(a_bytes.size() ==
                     inst.m * packedVectorBytes(inst.aType, inst.kDepth),
                 "A tile size mismatch");
    OLIVE_ASSERT(b_bytes.size() ==
                     inst.n * packedVectorBytes(inst.bType, inst.kDepth),
                 "B tile size mismatch");
    OLIVE_ASSERT(c.empty() || c.size() == inst.m * inst.n,
                 "C tile size mismatch");

    // Pre-decode all operand vectors (the per-EDP decoders of Fig. 6a).
    std::vector<std::vector<ExpInt>> a_rows(inst.m), b_cols(inst.n);
    for (size_t r = 0; r < inst.m; ++r)
        a_rows[r] = decodeVector(inst.aType, inst.biasA, a_bytes, r,
                                 inst.kDepth);
    for (size_t col = 0; col < inst.n; ++col)
        b_cols[col] = decodeVector(inst.bType, inst.biasB, b_bytes, col,
                                   inst.kDepth);

    std::vector<i32> d(inst.m * inst.n, 0);
    for (size_t r = 0; r < inst.m; ++r) {
        for (size_t col = 0; col < inst.n; ++col) {
            const i32 dot = dotProduct(a_rows[r], b_cols[col]);
            const i32 base = c.empty() ? 0 : c[r * inst.n + col];
            d[r * inst.n + col] = base + dot;
        }
    }
    return d;
}

} // namespace hw
} // namespace olive
