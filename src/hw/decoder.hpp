/**
 * @file
 * Bit-exact hardware decoder models (Sec. 4.2).
 *
 * AbfloatDecoder models the Fig. 7 datapath: a 4-bit (or 8-bit) abfloat
 * code plus the bias register produce an exponent-integer pair using
 * only a mux and two small adders.  OvpDecoder models Fig. 6b: it reads
 * exactly one memory-aligned pair (1 byte at 4 bits, 2 bytes at 8 bits),
 * recognizes the outlier identifier in either slot, zeroes the victim,
 * and routes the other slot through either the normal decoder or the
 * outlier decoder.  Both are written the way the RTL behaves so the unit
 * tests can cross-check them against the algorithmic codecs in
 * src/quant.
 */

#ifndef OLIVE_HW_DECODER_HPP
#define OLIVE_HW_DECODER_HPP

#include "quant/dtype.hpp"
#include "quant/expint.hpp"
#include "util/common.hpp"

namespace olive {
namespace hw {

/**
 * The Fig. 7 abfloat outlier decoder.
 *
 * For the 4-bit E2M1 code x = (s b2 b1 b0):
 *   exponent = bias + (b2 b1)
 *   integer  = 0 when (b2 b1 b0) == 000, else (1 b0), negated by s.
 * The 8-bit E4M3 variant extends the fields to 4 exponent and 3
 * mantissa bits.
 */
class AbfloatDecoder
{
  public:
    /**
     * @param bits 4 (E2M1) or 8 (E4M3).
     * @param bias The adaptive bias register value.
     */
    AbfloatDecoder(int bits, int bias);

    int bits() const { return bits_; }
    int bias() const { return bias_; }

    /** Decode one code to an exponent-integer pair. */
    ExpInt decode(u32 code) const;

  private:
    int bits_;
    int bias_;
};

/** Decoded pair produced by the OVP decoder. */
struct DecodedPair
{
    ExpInt first;
    ExpInt second;
    bool firstIsOutlier = false;
    bool secondIsOutlier = false;
};

/** The Fig. 6b outlier-victim pair decoder. */
class OvpDecoder
{
  public:
    /**
     * @param normal Normal-value type (determines width and identifier).
     * @param bias   Abfloat bias for the outlier path; -1 selects the
     *               complementary default.
     */
    explicit OvpDecoder(NormalType normal, int bias = -1);

    NormalType normalType() const { return normal_; }

    /** Decode a 4-bit pair from one byte (low nibble = first value). */
    DecodedPair decodeByte(u8 byte) const;

    /** Decode an 8-bit pair from two bytes. */
    DecodedPair decodeBytes(u8 b0, u8 b1) const;

    /** Decode two already-separated codes. */
    DecodedPair decodeCodes(u32 c0, u32 c1) const;

  private:
    /** Normal-path decode: identifier slots produce zero. */
    ExpInt decodeNormal(u32 code) const;

    NormalType normal_;
    NormalCodec codec_;
    AbfloatDecoder outlierDecoder_;
};

} // namespace hw
} // namespace olive

#endif // OLIVE_HW_DECODER_HPP
