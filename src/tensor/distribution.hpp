/**
 * @file
 * Synthetic tensor generators and outlier profiling.
 *
 * This module is the substitution for real checkpoint statistics (see
 * DESIGN.md): it generates tensors whose Gaussian bulk and heavy outlier
 * tail are calibrated to the published transformer statistics of the
 * paper's Fig. 2 and Table 2, and it measures the same profile metrics
 * the paper plots (Max sigma, >3sigma %, >6sigma %).
 */

#ifndef OLIVE_TENSOR_DISTRIBUTION_HPP
#define OLIVE_TENSOR_DISTRIBUTION_HPP

#include <vector>

#include "tensor.hpp"
#include "util/random.hpp"

namespace olive {

/** Parameters of a synthetic tensor's value distribution. */
struct DistProfile
{
    double mean = 0.0;          //!< Gaussian bulk mean.
    double sigma = 1.0;         //!< Gaussian bulk standard deviation.
    double outlierProb = 0.0;   //!< Per-element probability of an outlier.
    double outlierLoSigma = 4.0; //!< Minimum outlier magnitude (in sigma).
    double outlierHiSigma = 8.0; //!< Maximum outlier magnitude (in sigma).
};

/** Fill @p t from the profile with the given rng. */
void fillFromProfile(Tensor &t, const DistProfile &profile, Rng &rng);

/** Gaussian tensor, mean 0 / given sigma. */
Tensor gaussianTensor(const std::vector<size_t> &shape, double sigma,
                      Rng &rng);

/**
 * "CNN-like" tensor: Gaussian with a mild tail (Max sigma in the teens
 * to ~28, matching ResNet-18 in Fig. 2a).
 */
Tensor cnnLikeTensor(const std::vector<size_t> &shape, Rng &rng);

/**
 * "Transformer-like" tensor: Gaussian bulk with a sparse heavy tail
 * whose maxima reach the tens-to-hundreds of sigma regime of Fig. 2b.
 * @p max_sigma controls the tail extent for this tensor.
 */
Tensor transformerLikeTensor(const std::vector<size_t> &shape,
                             double max_sigma, double outlier_prob, Rng &rng);

/** Profile metrics of one tensor, matching the Fig. 2 axes. */
struct OutlierProfile
{
    double sigma = 0.0;     //!< Fitted standard deviation.
    double maxSigma = 0.0;  //!< max|x - mean| / sigma.
    double gt3SigmaPct = 0.0; //!< Percent of values beyond 3 sigma.
    double gt6SigmaPct = 0.0; //!< Percent of values beyond 6 sigma.
};

/** Measure the Fig. 2 metrics of @p t. */
OutlierProfile profileTensor(const Tensor &t);

} // namespace olive

#endif // OLIVE_TENSOR_DISTRIBUTION_HPP
