#include "gemm.hpp"

#include <algorithm>
#include <vector>

#include "util/parallel.hpp"

namespace olive {

namespace {

constexpr size_t kBlock = 64;

} // namespace

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    OLIVE_ASSERT(a.rank() == 2 && b.rank() == 2, "matmul needs matrices");
    const size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    OLIVE_ASSERT(b.dim(0) == k, "matmul inner dims must agree");

    Tensor c({m, n});
    const float *pa = a.raw();
    const float *pb = b.raw();
    float *pc = c.raw();

    // Row blocks parallelize; every output element accumulates in double
    // over ascending l, the same order and precision as matmulTransB, so
    // the two paths agree bitwise on transposed inputs.
    par::parallelFor(0, m, kBlock, [&](size_t r0, size_t r1) {
        std::vector<double> acc((r1 - r0) * n, 0.0);
        for (size_t l0 = 0; l0 < k; l0 += kBlock) {
            const size_t l1 = std::min(l0 + kBlock, k);
            for (size_t i = r0; i < r1; ++i) {
                double *arow = acc.data() + (i - r0) * n;
                for (size_t l = l0; l < l1; ++l) {
                    const double av = pa[i * k + l];
                    const float *brow = pb + l * n;
                    for (size_t j = 0; j < n; ++j)
                        arow[j] += av * brow[j];
                }
            }
        }
        for (size_t i = r0; i < r1; ++i) {
            const double *arow = acc.data() + (i - r0) * n;
            float *crow = pc + i * n;
            for (size_t j = 0; j < n; ++j)
                crow[j] = static_cast<float>(arow[j]);
        }
    });
    return c;
}

Tensor
matmulTransB(const Tensor &a, const Tensor &b)
{
    OLIVE_ASSERT(a.rank() == 2 && b.rank() == 2, "matmul needs matrices");
    const size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
    OLIVE_ASSERT(b.dim(1) == k, "matmulTransB inner dims must agree");

    Tensor c({m, n});
    const float *pa = a.raw();
    const float *pb = b.raw();
    float *pc = c.raw();

    par::parallelFor(0, m, 1, [&](size_t r0, size_t r1) {
        for (size_t i = r0; i < r1; ++i) {
            const float *arow = pa + i * k;
            for (size_t j = 0; j < n; ++j) {
                const float *brow = pb + j * k;
                double acc = 0.0;
                for (size_t l = 0; l < k; ++l)
                    acc += static_cast<double>(arow[l]) * brow[l];
                pc[i * n + j] = static_cast<float>(acc);
            }
        }
    });
    return c;
}

Tensor
linearForward(const Tensor &a, const Tensor &w, const Tensor &bias)
{
    Tensor c = matmulTransB(a, w);
    const size_t n = c.dim(1);
    OLIVE_ASSERT(bias.rank() == 1 && bias.dim(0) == n,
                 "bias must match output features");
    const float *pbias = bias.raw();
    float *pc = c.raw();
    par::parallelFor(0, c.dim(0), 8, [&](size_t r0, size_t r1) {
        for (size_t i = r0; i < r1; ++i) {
            float *crow = pc + i * n;
            for (size_t j = 0; j < n; ++j)
                crow[j] += pbias[j];
        }
    });
    return c;
}

void
axpy(Tensor &c, const Tensor &a, float alpha)
{
    OLIVE_ASSERT(c.size() == a.size(), "axpy size mismatch");
    auto cd = c.data();
    auto ad = a.data();
    for (size_t i = 0; i < cd.size(); ++i)
        cd[i] += alpha * ad[i];
}

} // namespace olive
