#include "gemm.hpp"

#include <algorithm>

namespace olive {

namespace {

constexpr size_t kBlock = 64;

} // namespace

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    OLIVE_ASSERT(a.rank() == 2 && b.rank() == 2, "matmul needs matrices");
    const size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    OLIVE_ASSERT(b.dim(0) == k, "matmul inner dims must agree");

    Tensor c({m, n});
    const float *pa = a.raw();
    const float *pb = b.raw();
    float *pc = c.raw();

    for (size_t i0 = 0; i0 < m; i0 += kBlock) {
        const size_t i1 = std::min(i0 + kBlock, m);
        for (size_t l0 = 0; l0 < k; l0 += kBlock) {
            const size_t l1 = std::min(l0 + kBlock, k);
            for (size_t i = i0; i < i1; ++i) {
                for (size_t l = l0; l < l1; ++l) {
                    const float av = pa[i * k + l];
                    if (av == 0.0f)
                        continue;
                    const float *brow = pb + l * n;
                    float *crow = pc + i * n;
                    for (size_t j = 0; j < n; ++j)
                        crow[j] += av * brow[j];
                }
            }
        }
    }
    return c;
}

Tensor
matmulTransB(const Tensor &a, const Tensor &b)
{
    OLIVE_ASSERT(a.rank() == 2 && b.rank() == 2, "matmul needs matrices");
    const size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
    OLIVE_ASSERT(b.dim(1) == k, "matmulTransB inner dims must agree");

    Tensor c({m, n});
    const float *pa = a.raw();
    const float *pb = b.raw();
    float *pc = c.raw();

    for (size_t i = 0; i < m; ++i) {
        const float *arow = pa + i * k;
        for (size_t j = 0; j < n; ++j) {
            const float *brow = pb + j * k;
            double acc = 0.0;
            for (size_t l = 0; l < k; ++l)
                acc += static_cast<double>(arow[l]) * brow[l];
            pc[i * n + j] = static_cast<float>(acc);
        }
    }
    return c;
}

Tensor
linearForward(const Tensor &a, const Tensor &w, const Tensor &bias)
{
    Tensor c = matmulTransB(a, w);
    OLIVE_ASSERT(bias.rank() == 1 && bias.dim(0) == c.dim(1),
                 "bias must match output features");
    for (size_t i = 0; i < c.dim(0); ++i) {
        auto row = c.row(i);
        for (size_t j = 0; j < row.size(); ++j)
            row[j] += bias[j];
    }
    return c;
}

void
axpy(Tensor &c, const Tensor &a, float alpha)
{
    OLIVE_ASSERT(c.size() == a.size(), "axpy size mismatch");
    auto cd = c.data();
    auto ad = a.data();
    for (size_t i = 0; i < cd.size(); ++i)
        cd[i] += alpha * ad[i];
}

} // namespace olive
