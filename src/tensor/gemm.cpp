#include "gemm.hpp"

#include <algorithm>
#include <vector>

#include "util/parallel.hpp"

namespace olive {

namespace {

/** Row / inner-dim cache block (rows per parallel chunk, l per pass). */
constexpr size_t kBlock = 64;

/**
 * Register-tile width: independent double accumulator chains hide the
 * add latency of the serial per-element accumulation (ILP must come
 * from adjacent output elements), sized for baseline x86-64's sixteen
 * xmm registers.
 */
constexpr size_t kJTile = 16;

/** Elements per parallel chunk of axpy. */
constexpr size_t kAxpyGrain = 1u << 14;

/**
 * Core streaming GEMM: C = A(m,k) * B(k,n) [+ bias] with B row-major,
 * given either as floats (@p pbf) or already widened to double
 * (@p pbd; exactly one is non-null).  Cache-blocked over l (kBlock)
 * with a per-row-block double accumulator; float B blocks are widened
 * to a double scratch once per l-block instead of re-running the
 * float->double conversion for every A row (widening is exact, so
 * products are unchanged); the kJTile register tile keeps partial sums
 * in registers across the l-block instead of round-tripping the
 * accumulator buffer once per l.  Every output element accumulates in
 * double over ascending l (blocks ascend, l ascends within a block) —
 * exactly the reference order — so the kernel is bit-identical to
 * matmulReference, and to matmulTransBReference when B holds the
 * transposed weights.
 */
Tensor
streamKernel(const Tensor &a, const float *pbf, const double *pbd,
             size_t n, const float *bias)
{
    const size_t m = a.dim(0), k = a.dim(1);
    Tensor c({m, n});
    const float *pa = a.raw();
    float *pc = c.raw();

    par::parallelFor(0, m, kBlock, [&](size_t r0, size_t r1) {
        std::vector<double> acc((r1 - r0) * n, 0.0);
        std::vector<double> bscratch(pbd ? 0 : kBlock * n);
        for (size_t l0 = 0; l0 < k; l0 += kBlock) {
            const size_t l1 = std::min(l0 + kBlock, k);
            const double *bblk;
            if (pbd) {
                bblk = pbd + l0 * n;
            } else {
                for (size_t l = l0; l < l1; ++l) {
                    const float *brow = pbf + l * n;
                    double *drow = bscratch.data() + (l - l0) * n;
                    for (size_t j = 0; j < n; ++j)
                        drow[j] = brow[j];
                }
                bblk = bscratch.data();
            }
            for (size_t i = r0; i < r1; ++i) {
                double *arow_acc = acc.data() + (i - r0) * n;
                const float *arow = pa + i * k;
                size_t j = 0;
                for (; j + kJTile <= n; j += kJTile) {
                    double t[kJTile];
                    for (size_t u = 0; u < kJTile; ++u)
                        t[u] = arow_acc[j + u];
                    for (size_t l = l0; l < l1; ++l) {
                        const double av = arow[l];
                        const double *brow = bblk + (l - l0) * n + j;
                        for (size_t u = 0; u < kJTile; ++u)
                            t[u] += av * brow[u];
                    }
                    for (size_t u = 0; u < kJTile; ++u)
                        arow_acc[j + u] = t[u];
                }
                for (; j < n; ++j) {
                    double t = arow_acc[j];
                    for (size_t l = l0; l < l1; ++l)
                        t += static_cast<double>(arow[l]) *
                             bblk[(l - l0) * n + j];
                    arow_acc[j] = t;
                }
            }
        }
        for (size_t i = r0; i < r1; ++i) {
            const double *arow = acc.data() + (i - r0) * n;
            float *crow = pc + i * n;
            if (bias) {
                // float(acc) + bias in float arithmetic, exactly the
                // add the former second sweep applied to the stored
                // float.
                for (size_t j = 0; j < n; ++j)
                    crow[j] = static_cast<float>(arow[j]) + bias[j];
            } else {
                for (size_t j = 0; j < n; ++j)
                    crow[j] = static_cast<float>(arow[j]);
            }
        }
    });
    return c;
}

/** (n,k) floats -> row-major (k,n) doubles (widening is exact). */
std::vector<double>
transposeToDouble(const Tensor &b)
{
    const size_t n = b.dim(0), k = b.dim(1);
    std::vector<double> out(k * n);
    const float *pb = b.raw();
    par::parallelFor(0, n, kBlock, [&](size_t j0, size_t j1) {
        for (size_t j = j0; j < j1; ++j)
            for (size_t l = 0; l < k; ++l)
                out[l * n + j] = pb[j * k + l];
    });
    return out;
}

} // namespace

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    OLIVE_ASSERT(a.rank() == 2 && b.rank() == 2, "matmul needs matrices");
    OLIVE_ASSERT(b.dim(0) == a.dim(1), "matmul inner dims must agree");
    return streamKernel(a, b.raw(), nullptr, b.dim(1), nullptr);
}

Tensor
matmulTransB(const Tensor &a, const Tensor &b)
{
    OLIVE_ASSERT(a.rank() == 2 && b.rank() == 2, "matmul needs matrices");
    OLIVE_ASSERT(b.dim(1) == a.dim(1), "matmulTransB inner dims must agree");
    // One O(n*k) widening transpose turns the strided dot products into
    // the streaming kernel's unit-stride row passes; each output
    // element still accumulates a(i,l) * b(j,l) in double over
    // ascending l, so the result is bit-identical to
    // matmulTransBReference.
    const std::vector<double> bt = transposeToDouble(b);
    return streamKernel(a, nullptr, bt.data(), b.dim(0), nullptr);
}

Tensor
linearForward(const Tensor &a, const Tensor &w, const Tensor &bias)
{
    OLIVE_ASSERT(a.rank() == 2 && w.rank() == 2, "matmul needs matrices");
    OLIVE_ASSERT(w.dim(1) == a.dim(1), "matmulTransB inner dims must agree");
    OLIVE_ASSERT(bias.rank() == 1 && bias.dim(0) == w.dim(0),
                 "bias must match output features");
    const std::vector<double> wt = transposeToDouble(w);
    return streamKernel(a, nullptr, wt.data(), w.dim(0), bias.raw());
}

void
axpy(Tensor &c, const Tensor &a, float alpha)
{
    OLIVE_ASSERT(c.size() == a.size(), "axpy size mismatch");
    float *cd = c.raw();
    const float *ad = a.raw();
    // Elements are independent and written exactly once, so the loop
    // parallelizes deterministically and the body vectorizes.
    par::parallelFor(0, c.size(), kAxpyGrain, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
            cd[i] += alpha * ad[i];
    });
}

Tensor
matmulReference(const Tensor &a, const Tensor &b)
{
    OLIVE_ASSERT(a.rank() == 2 && b.rank() == 2, "matmul needs matrices");
    const size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    OLIVE_ASSERT(b.dim(0) == k, "matmul inner dims must agree");

    Tensor c({m, n});
    const float *pa = a.raw();
    const float *pb = b.raw();
    float *pc = c.raw();

    par::parallelFor(0, m, kBlock, [&](size_t r0, size_t r1) {
        std::vector<double> acc((r1 - r0) * n, 0.0);
        for (size_t l0 = 0; l0 < k; l0 += kBlock) {
            const size_t l1 = std::min(l0 + kBlock, k);
            for (size_t i = r0; i < r1; ++i) {
                double *arow = acc.data() + (i - r0) * n;
                for (size_t l = l0; l < l1; ++l) {
                    const double av = pa[i * k + l];
                    const float *brow = pb + l * n;
                    for (size_t j = 0; j < n; ++j)
                        arow[j] += av * brow[j];
                }
            }
        }
        for (size_t i = r0; i < r1; ++i) {
            const double *arow = acc.data() + (i - r0) * n;
            float *crow = pc + i * n;
            for (size_t j = 0; j < n; ++j)
                crow[j] = static_cast<float>(arow[j]);
        }
    });
    return c;
}

Tensor
matmulTransBReference(const Tensor &a, const Tensor &b)
{
    OLIVE_ASSERT(a.rank() == 2 && b.rank() == 2, "matmul needs matrices");
    const size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
    OLIVE_ASSERT(b.dim(1) == k, "matmulTransB inner dims must agree");

    Tensor c({m, n});
    const float *pa = a.raw();
    const float *pb = b.raw();
    float *pc = c.raw();

    par::parallelFor(0, m, 1, [&](size_t r0, size_t r1) {
        for (size_t i = r0; i < r1; ++i) {
            const float *arow = pa + i * k;
            for (size_t j = 0; j < n; ++j) {
                const float *brow = pb + j * k;
                double acc = 0.0;
                for (size_t l = 0; l < k; ++l)
                    acc += static_cast<double>(arow[l]) * brow[l];
                pc[i * n + j] = static_cast<float>(acc);
            }
        }
    });
    return c;
}

} // namespace olive
