/**
 * @file
 * Blocked single-precision GEMM and friends.
 *
 * C = A(m,k) * B(k,n) [+ bias], with optional transposition of B.  This
 * is the reference arithmetic path for the functional evaluation; the
 * hardware-accurate integer path lives in src/hw.
 *
 * Every variant accumulates each output element in double over
 * ascending inner index, so matmul and matmulTransB agree bitwise on
 * transposed inputs, and row-parallel execution (util/parallel) is
 * bit-identical to serial at any OLIVE_THREADS value.
 *
 * The public kernels are register-tiled and cache-blocked; tiling only
 * regroups which output elements are computed together — each element
 * still accumulates over the same ascending inner index in double — so
 * the fast kernels are bit-identical to the straightforward
 * *Reference() implementations retained below as oracles
 * (tests/test_kernels_oracle.cpp compares them bytewise).
 */

#ifndef OLIVE_TENSOR_GEMM_HPP
#define OLIVE_TENSOR_GEMM_HPP

#include "tensor.hpp"

namespace olive {

/**
 * C = A * B.  A is (m,k), B is (k,n), C is resized/created as (m,n).
 */
Tensor matmul(const Tensor &a, const Tensor &b);

/**
 * C = A * B^T.  A is (m,k), B is (n,k), C is (m,n).  This matches the
 * layout of transformer weight matrices stored as (out, in).
 */
Tensor matmulTransB(const Tensor &a, const Tensor &b);

/** C = A * B^T + bias (bias is rank-1 with n elements). */
Tensor linearForward(const Tensor &a, const Tensor &w, const Tensor &bias);

/** In-place C += alpha * A (parallel; each element written once). */
void axpy(Tensor &c, const Tensor &a, float alpha);

/** Untiled matmul, the bit-exactness oracle for matmul(). */
Tensor matmulReference(const Tensor &a, const Tensor &b);

/** Untiled matmulTransB, the bit-exactness oracle for matmulTransB(). */
Tensor matmulTransBReference(const Tensor &a, const Tensor &b);

} // namespace olive

#endif // OLIVE_TENSOR_GEMM_HPP
