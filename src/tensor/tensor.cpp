#include "tensor.hpp"

#include <algorithm>
#include <numeric>

namespace olive {

Tensor::Tensor(std::initializer_list<size_t> shape)
    : Tensor(std::vector<size_t>(shape))
{
}

Tensor::Tensor(const std::vector<size_t> &shape)
{
    initShape(shape);
    size_t n = 1;
    for (size_t i = 0; i < rank_; ++i)
        n *= dims_[i];
    data_.assign(n, 0.0f);
}

Tensor::Tensor(const std::vector<size_t> &shape, std::vector<float> data)
    : data_(std::move(data))
{
    initShape(shape);
    size_t n = 1;
    for (size_t i = 0; i < rank_; ++i)
        n *= dims_[i];
    OLIVE_ASSERT(n == data_.size(), "tensor data does not match shape");
}

void
Tensor::initShape(const std::vector<size_t> &shape)
{
    OLIVE_ASSERT(!shape.empty() && shape.size() <= kMaxRank,
                 "tensor rank must be 1..4");
    rank_ = shape.size();
    for (size_t i = 0; i < rank_; ++i) {
        OLIVE_ASSERT(shape[i] > 0, "tensor dims must be positive");
        dims_[i] = shape[i];
    }
}

size_t
Tensor::dim(size_t d) const
{
    OLIVE_ASSERT(d < rank_, "dimension index out of range");
    return dims_[d];
}

std::vector<size_t>
Tensor::shape() const
{
    return std::vector<size_t>(dims_.begin(), dims_.begin() + rank_);
}

float &
Tensor::at(size_t i, size_t j)
{
    OLIVE_ASSERT(rank_ == 2, "2-index access on non-matrix");
    return data_[i * dims_[1] + j];
}

float
Tensor::at(size_t i, size_t j) const
{
    OLIVE_ASSERT(rank_ == 2, "2-index access on non-matrix");
    return data_[i * dims_[1] + j];
}

float &
Tensor::at(size_t i, size_t j, size_t k)
{
    OLIVE_ASSERT(rank_ == 3, "3-index access on non-rank-3 tensor");
    return data_[(i * dims_[1] + j) * dims_[2] + k];
}

float
Tensor::at(size_t i, size_t j, size_t k) const
{
    OLIVE_ASSERT(rank_ == 3, "3-index access on non-rank-3 tensor");
    return data_[(i * dims_[1] + j) * dims_[2] + k];
}

std::span<float>
Tensor::row(size_t i)
{
    OLIVE_ASSERT(rank_ == 2, "row access on non-matrix");
    OLIVE_ASSERT(i < dims_[0], "row index out of range");
    return std::span<float>(data_.data() + i * dims_[1], dims_[1]);
}

std::span<const float>
Tensor::row(size_t i) const
{
    OLIVE_ASSERT(rank_ == 2, "row access on non-matrix");
    OLIVE_ASSERT(i < dims_[0], "row index out of range");
    return std::span<const float>(data_.data() + i * dims_[1], dims_[1]);
}

void
Tensor::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

void
Tensor::reshape(const std::vector<size_t> &shape)
{
    size_t n = 1;
    for (size_t d : shape)
        n *= d;
    OLIVE_ASSERT(n == data_.size(), "reshape must preserve element count");
    initShape(shape);
}

Tensor
Tensor::clone() const
{
    Tensor t;
    t.rank_ = rank_;
    t.dims_ = dims_;
    t.data_ = data_;
    return t;
}

std::string
Tensor::shapeStr() const
{
    std::string s = "f32[";
    for (size_t i = 0; i < rank_; ++i) {
        s += std::to_string(dims_[i]);
        if (i + 1 < rank_)
            s += ", ";
    }
    s += "]";
    return s;
}

} // namespace olive
