#include "ops.hpp"

#include <algorithm>
#include <cmath>

namespace olive {
namespace ops {

void
softmaxRow(std::span<float> row)
{
    if (row.empty())
        return;
    const float mx = *std::max_element(row.begin(), row.end());
    double sum = 0.0;
    for (auto &v : row) {
        v = std::exp(v - mx);
        sum += v;
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (auto &v : row)
        v *= inv;
}

void
softmaxRows(Tensor &t)
{
    OLIVE_ASSERT(t.rank() == 2, "softmaxRows needs a matrix");
    for (size_t i = 0; i < t.dim(0); ++i)
        softmaxRow(t.row(i));
}

void
gelu(Tensor &t)
{
    constexpr float kSqrt2OverPi = 0.7978845608f;
    for (auto &v : t.data()) {
        const float x = v;
        v = 0.5f * x *
            (1.0f + std::tanh(kSqrt2OverPi * (x + 0.044715f * x * x * x)));
    }
}

void
relu(Tensor &t)
{
    for (auto &v : t.data())
        v = std::max(v, 0.0f);
}

void
tanhInplace(Tensor &t)
{
    for (auto &v : t.data())
        v = std::tanh(v);
}

Tensor
layerNorm(const Tensor &x, const Tensor &gamma, const Tensor &beta, float eps)
{
    OLIVE_ASSERT(x.rank() == 2, "layerNorm needs a matrix");
    const size_t d = x.dim(1);
    OLIVE_ASSERT(gamma.size() == d && beta.size() == d,
                 "layerNorm affine params must match feature dim");
    Tensor out({x.dim(0), d});
    for (size_t i = 0; i < x.dim(0); ++i) {
        auto row = x.row(i);
        double mean = 0.0;
        for (float v : row)
            mean += v;
        mean /= static_cast<double>(d);
        double var = 0.0;
        for (float v : row) {
            const double dv = v - mean;
            var += dv * dv;
        }
        var /= static_cast<double>(d);
        const double inv = 1.0 / std::sqrt(var + eps);
        auto orow = out.row(i);
        for (size_t j = 0; j < d; ++j) {
            orow[j] = static_cast<float>((row[j] - mean) * inv) * gamma[j] +
                      beta[j];
        }
    }
    return out;
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    OLIVE_ASSERT(a.size() == b.size(), "add size mismatch");
    Tensor c = a.clone();
    auto cd = c.data();
    auto bd = b.data();
    for (size_t i = 0; i < cd.size(); ++i)
        cd[i] += bd[i];
    return c;
}

void
scale(Tensor &t, float s)
{
    for (auto &v : t.data())
        v *= s;
}

double
crossEntropyRow(std::span<const float> logits, int label)
{
    OLIVE_ASSERT(label >= 0 && static_cast<size_t>(label) < logits.size(),
                 "cross entropy label out of range");
    const float mx = *std::max_element(logits.begin(), logits.end());
    double sum = 0.0;
    for (float v : logits)
        sum += std::exp(static_cast<double>(v) - mx);
    return std::log(sum) - (static_cast<double>(logits[label]) - mx);
}

int
argmaxRow(std::span<const float> row)
{
    OLIVE_ASSERT(!row.empty(), "argmax of empty row");
    return static_cast<int>(
        std::max_element(row.begin(), row.end()) - row.begin());
}

std::vector<float>
logSoftmaxRow(std::span<const float> row)
{
    const float mx = *std::max_element(row.begin(), row.end());
    double sum = 0.0;
    for (float v : row)
        sum += std::exp(static_cast<double>(v) - mx);
    const float logz = static_cast<float>(std::log(sum)) + mx;
    std::vector<float> out(row.size());
    for (size_t i = 0; i < row.size(); ++i)
        out[i] = row[i] - logz;
    return out;
}

} // namespace ops
} // namespace olive
