/**
 * @file
 * Dense row-major float tensor, the data substrate of the whole
 * repository.
 *
 * Shapes of rank 1..4 are supported.  Storage is always a contiguous
 * std::vector<float>; views are exposed via std::span.  The class is
 * deliberately simple — this project needs deterministic, inspectable
 * buffers more than it needs a full autograd array library.
 */

#ifndef OLIVE_TENSOR_TENSOR_HPP
#define OLIVE_TENSOR_TENSOR_HPP

#include <array>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace olive {

/** Dense row-major float tensor of rank 1..4. */
class Tensor
{
  public:
    static constexpr size_t kMaxRank = 4;

    /** Empty (rank-0, size-0) tensor. */
    Tensor() = default;

    /** Construct zero-filled with the given shape. */
    explicit Tensor(std::initializer_list<size_t> shape);

    /** Construct zero-filled with the given shape. */
    explicit Tensor(const std::vector<size_t> &shape);

    /** Construct from existing data (size must match the shape). */
    Tensor(const std::vector<size_t> &shape, std::vector<float> data);

    /** Number of dimensions. */
    size_t rank() const { return rank_; }

    /** Extent of dimension @p d. */
    size_t dim(size_t d) const;

    /** Total element count. */
    size_t size() const { return data_.size(); }

    /** Shape as a vector. */
    std::vector<size_t> shape() const;

    /** Mutable flat view. */
    std::span<float> data() { return data_; }

    /** Const flat view. */
    std::span<const float> data() const { return data_; }

    /** Raw pointer access (row-major). */
    float *raw() { return data_.data(); }
    const float *raw() const { return data_.data(); }

    /** Rank-2 element access. */
    float &at(size_t i, size_t j);
    float at(size_t i, size_t j) const;

    /** Rank-3 element access. */
    float &at(size_t i, size_t j, size_t k);
    float at(size_t i, size_t j, size_t k) const;

    /** Flat element access. */
    float &operator[](size_t i) { return data_[i]; }
    float operator[](size_t i) const { return data_[i]; }

    /** Mutable view of row @p i of a rank-2 tensor. */
    std::span<float> row(size_t i);

    /** Const view of row @p i of a rank-2 tensor. */
    std::span<const float> row(size_t i) const;

    /** Fill every element with @p v. */
    void fill(float v);

    /**
     * Reshape in place; the product of the new extents must equal
     * size().  Data is untouched (row-major reinterpretation).
     */
    void reshape(const std::vector<size_t> &shape);

    /** Deep-copy clone. */
    Tensor clone() const;

    /** Human-readable "f32[a, b]" shape string. */
    std::string shapeStr() const;

  private:
    void initShape(const std::vector<size_t> &shape);

    size_t rank_ = 0;
    std::array<size_t, kMaxRank> dims_{};
    std::vector<float> data_;
};

} // namespace olive

#endif // OLIVE_TENSOR_TENSOR_HPP
