#include "distribution.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace olive {

void
fillFromProfile(Tensor &t, const DistProfile &profile, Rng &rng)
{
    for (auto &v : t.data()) {
        const double z = rng.heavyTail(profile.outlierProb,
                                       profile.outlierLoSigma,
                                       profile.outlierHiSigma);
        v = static_cast<float>(profile.mean + profile.sigma * z);
    }
}

Tensor
gaussianTensor(const std::vector<size_t> &shape, double sigma, Rng &rng)
{
    Tensor t(shape);
    for (auto &v : t.data())
        v = static_cast<float>(rng.gaussian(0.0, sigma));
    return t;
}

Tensor
cnnLikeTensor(const std::vector<size_t> &shape, Rng &rng)
{
    // CNN tensors in Fig. 2a: bulk Gaussian, occasional values up to
    // ~10-28 sigma, outlier ratio well under 0.5%.
    Tensor t(shape);
    DistProfile p;
    p.outlierProb = 4e-4;
    p.outlierLoSigma = 3.5;
    p.outlierHiSigma = 26.0;
    fillFromProfile(t, p, rng);
    return t;
}

Tensor
transformerLikeTensor(const std::vector<size_t> &shape, double max_sigma,
                      double outlier_prob, Rng &rng)
{
    Tensor t(shape);
    DistProfile p;
    p.outlierProb = outlier_prob;
    p.outlierLoSigma = 3.2;
    p.outlierHiSigma = max_sigma;
    fillFromProfile(t, p, rng);

    // Guarantee the tail actually reaches max_sigma so the Max-sigma
    // profile of Fig. 2b is reproduced even for small tensors: place one
    // deterministic extreme value at a random position.
    if (t.size() > 0 && max_sigma > 4.0) {
        const size_t pos = static_cast<size_t>(rng.uniformInt(t.size()));
        const double sign = (rng.uniform() < 0.5) ? -1.0 : 1.0;
        t[pos] = static_cast<float>(sign * max_sigma);
    }
    return t;
}

OutlierProfile
profileTensor(const Tensor &t)
{
    OutlierProfile p;
    auto xs = t.data();
    const double m = stats::mean(xs);
    p.sigma = stats::stddev(xs);
    if (p.sigma == 0.0)
        return p;
    double mx = 0.0;
    size_t gt3 = 0, gt6 = 0;
    for (float x : xs) {
        const double d = std::fabs(x - m) / p.sigma;
        mx = std::max(mx, d);
        if (d > 3.0)
            ++gt3;
        if (d > 6.0)
            ++gt6;
    }
    p.maxSigma = mx;
    p.gt3SigmaPct = 100.0 * static_cast<double>(gt3) /
                    static_cast<double>(xs.size());
    p.gt6SigmaPct = 100.0 * static_cast<double>(gt6) /
                    static_cast<double>(xs.size());
    return p;
}

} // namespace olive
