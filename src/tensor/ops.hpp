/**
 * @file
 * Elementwise and row-wise tensor operations used by the transformer
 * substrate: softmax, layer normalization, GELU, residual adds, and a
 * handful of reductions.
 */

#ifndef OLIVE_TENSOR_OPS_HPP
#define OLIVE_TENSOR_OPS_HPP

#include <span>

#include "tensor.hpp"

namespace olive {
namespace ops {

/** Numerically stable in-place softmax over a single row. */
void softmaxRow(std::span<float> row);

/** Row-wise softmax of a rank-2 tensor, in place. */
void softmaxRows(Tensor &t);

/** In-place GELU (tanh approximation) over every element. */
void gelu(Tensor &t);

/** In-place ReLU. */
void relu(Tensor &t);

/** In-place tanh. */
void tanhInplace(Tensor &t);

/**
 * Row-wise layer normalization with affine parameters:
 * out = (x - mean) / sqrt(var + eps) * gamma + beta.
 */
Tensor layerNorm(const Tensor &x, const Tensor &gamma, const Tensor &beta,
                 float eps = 1e-5f);

/** Elementwise sum (same shape). */
Tensor add(const Tensor &a, const Tensor &b);

/** Scale every element in place. */
void scale(Tensor &t, float s);

/** Cross-entropy of one logit row against an integer label. */
double crossEntropyRow(std::span<const float> logits, int label);

/** Arg-max of a row. */
int argmaxRow(std::span<const float> row);

/** log-softmax of one row (returns a new vector). */
std::vector<float> logSoftmaxRow(std::span<const float> row);

} // namespace ops
} // namespace olive

#endif // OLIVE_TENSOR_OPS_HPP
