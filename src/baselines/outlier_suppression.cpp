#include "outlier_suppression.hpp"

#include "baselines/uniform.hpp"
#include "util/common.hpp"
#include "util/stats.hpp"

namespace olive {

OutlierSuppressionScheme::OutlierSuppressionScheme(int bits)
    : bits_(bits), maxq_((1 << (bits - 1)) - 1)
{
    OLIVE_ASSERT(bits == 4 || bits == 6 || bits == 8,
                 "OS proxy supports 4/6/8 bits");
}

std::string
OutlierSuppressionScheme::name() const
{
    return std::to_string(bits_) + "-bit Outlier Suppression";
}

namespace {

/**
 * The suppression itself: Outlier Suppression's activation path clips
 * the (gamma-migrated) activations to a tight learned range — that is
 * the method's point, and its accuracy cost on models whose activation
 * outliers are functionally important.  We model the learned range as
 * at most kSuppressSigma standard deviations.
 */
constexpr double kSuppressSigma = 8.0;

float
suppressedScale(std::span<const float> xs, int maxq)
{
    const float mse_scale = searchUniformScale(xs, maxq);
    const double sigma = stats::stddev(xs);
    const float clip_scale =
        static_cast<float>(kSuppressSigma * sigma / maxq);
    return (sigma > 0.0 && clip_scale < mse_scale) ? clip_scale
                                                   : mse_scale;
}

} // namespace

std::vector<float>
OutlierSuppressionScheme::apply(std::span<const float> xs, TensorKind kind)
{
    if (kind == TensorKind::Activation) {
        const float scale = suppressedScale(xs, maxq_);
        return uniformFakeQuant(xs, scale, maxq_);
    }
    const float scale = searchUniformScale(xs, maxq_);
    return uniformFakeQuant(xs, scale, maxq_);
}

Scheme::Applier
OutlierSuppressionScheme::calibrate(std::span<const float> calibration,
                                    TensorKind kind)
{
    const float scale = (kind == TensorKind::Activation)
                            ? suppressedScale(calibration, maxq_)
                            : searchUniformScale(calibration, maxq_);
    const int maxq = maxq_;
    return [scale, maxq](std::span<const float> xs) {
        return uniformFakeQuant(xs, scale, maxq);
    };
}

std::vector<float>
OutlierSuppressionScheme::applyMatrix(std::span<const float> xs, size_t rows,
                                      size_t cols, TensorKind kind)
{
    if (kind == TensorKind::Activation || rows * cols != xs.size())
        return apply(xs, kind);

    // Per-output-channel weight quantization: gamma migration folds the
    // LayerNorm scale into each output row, which is equivalent to a
    // free per-row scale factor.
    std::vector<float> out(xs.size());
    for (size_t r = 0; r < rows; ++r) {
        const auto row = xs.subspan(r * cols, cols);
        const float scale = searchUniformScale(row, maxq_);
        const auto rt = uniformFakeQuant(row, scale, maxq_);
        std::copy(rt.begin(), rt.end(), out.begin() + r * cols);
    }
    return out;
}

} // namespace olive
