#include "ant.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "baselines/uniform.hpp"
#include "util/stats.hpp"

namespace olive {

namespace {

/** Nearest-value fake quant over an arbitrary sorted value table. */
std::vector<float>
tableFakeQuant(std::span<const float> xs, const std::vector<int> &values,
               float scale)
{
    std::vector<float> out(xs.size());
    for (size_t i = 0; i < xs.size(); ++i) {
        const double x = static_cast<double>(xs[i]) / scale;
        auto it = std::lower_bound(values.begin(), values.end(), x);
        int q;
        if (it == values.begin()) {
            q = values.front();
        } else if (it == values.end()) {
            q = values.back();
        } else {
            const int hi = *it;
            const int lo = *(it - 1);
            q = (x - lo <= hi - x) ? lo : hi;
        }
        out[i] = static_cast<float>(q) * scale;
    }
    return out;
}

std::vector<float>
subsample(std::span<const float> xs, size_t cap)
{
    if (xs.size() <= cap)
        return std::vector<float>(xs.begin(), xs.end());
    std::vector<float> s;
    s.reserve(cap);
    const size_t stride = xs.size() / cap;
    for (size_t i = 0; i < xs.size() && s.size() < cap; i += stride)
        s.push_back(xs[i]);
    return s;
}

} // namespace

AntDecision
antCalibrate4bit(std::span<const float> xs)
{
    const auto s = subsample(xs, 8192);
    const double amax = stats::absMax(s);
    OLIVE_ASSERT(amax > 0.0, "cannot calibrate an all-zero tensor");

    AntDecision best;
    best.mse = std::numeric_limits<double>::infinity();

    for (NormalType type : {NormalType::Int4, NormalType::Flint4}) {
        const auto values = valueTable(type);
        const int max_mag = maxNormalMagnitude(type);
        constexpr int kPoints = 32;
        for (int i = 0; i < kPoints; ++i) {
            const double frac = static_cast<double>(i) / (kPoints - 1);
            const double clip = amax * (0.02 + 0.98 * frac);
            const float scale = static_cast<float>(clip / max_mag);
            const auto rt = tableFakeQuant(s, values, scale);
            const double m = stats::mse(s, rt);
            if (m < best.mse) {
                best.mse = m;
                best.type = type;
                best.scale = scale;
            }
        }
    }
    return best;
}

std::vector<float>
antFakeQuant(std::span<const float> xs, const AntDecision &d)
{
    return tableFakeQuant(xs, valueTable(d.type), d.scale);
}

AntScheme::AntScheme(int bits, bool mixed_precision,
                     double escalate_threshold)
    : bits_(bits),
      mixedPrecision_(mixed_precision),
      escalateThreshold_(escalate_threshold)
{
    OLIVE_ASSERT(bits == 4 || bits == 8, "ANT supports 4/8 bits");
}

std::string
AntScheme::name() const
{
    return std::to_string(bits_) + "-bit ANT" +
           (mixedPrecision_ ? " (mixed)" : "");
}

std::vector<float>
AntScheme::apply(std::span<const float> xs, TensorKind)
{
    ++applied_;
    if (bits_ == 8) {
        const float scale = searchUniformScale(xs, 127);
        return uniformFakeQuant(xs, scale, 127);
    }

    AntDecision d = antCalibrate4bit(xs);
    if (mixedPrecision_) {
        // Relative error test: if 4-bit ANT cannot represent the tensor
        // well (outlier-heavy tensors), fall back to int8.
        double power = 0.0;
        for (float x : xs)
            power += static_cast<double>(x) * x;
        power /= static_cast<double>(xs.size());
        if (power > 0.0 && d.mse / power > escalateThreshold_) {
            ++escalated_;
            const float scale = searchUniformScale(xs, 127);
            return uniformFakeQuant(xs, scale, 127);
        }
    }
    return antFakeQuant(xs, d);
}

Scheme::Applier
AntScheme::calibrate(std::span<const float> calibration, TensorKind)
{
    ++applied_;
    if (bits_ == 8) {
        const float scale = searchUniformScale(calibration, 127);
        return [scale](std::span<const float> xs) {
            return uniformFakeQuant(xs, scale, 127);
        };
    }
    AntDecision d = antCalibrate4bit(calibration);
    if (mixedPrecision_) {
        double power = 0.0;
        for (float x : calibration)
            power += static_cast<double>(x) * x;
        power /= static_cast<double>(calibration.size());
        if (power > 0.0 && d.mse / power > escalateThreshold_) {
            ++escalated_;
            const float scale = searchUniformScale(calibration, 127);
            return [scale](std::span<const float> xs) {
                return uniformFakeQuant(xs, scale, 127);
            };
        }
    }
    return [d](std::span<const float> xs) { return antFakeQuant(xs, d); };
}

double
AntScheme::escalationRate() const
{
    return applied_ ? static_cast<double>(escalated_) /
                          static_cast<double>(applied_)
                    : 0.0;
}

} // namespace olive
