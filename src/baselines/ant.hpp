/**
 * @file
 * ANT baseline (Guo et al., MICRO 2022): fixed-length adaptive numerical
 * data type quantization.
 *
 * ANT picks, per tensor, the 4-bit data type (int4 or flint4) whose
 * value distribution best matches the tensor, by MSE.  It has no outlier
 * mechanism: values beyond the representable range clip.  Its
 * mixed-precision mode escalates tensors whose 4-bit relative error is
 * too high to int8 — the paper observes ~80 % of LLM layers end up int8
 * under PTQ, which is why ANT's speedup collapses toward the int8
 * baseline in Figs. 9/10.
 */

#ifndef OLIVE_BASELINES_ANT_HPP
#define OLIVE_BASELINES_ANT_HPP

#include "quant/dtype.hpp"
#include "quant/scheme.hpp"

namespace olive {

/** Result of ANT's per-tensor type/scale selection. */
struct AntDecision
{
    NormalType type = NormalType::Int4;
    float scale = 1.0f;
    double mse = 0.0;
    bool escalated = false;  //!< True if mixed precision chose int8.
};

/**
 * Calibrate ANT on @p xs at 4 bits: choose int4 vs flint4 and an
 * MSE-optimal scale.  (flint4's non-uniform grid gives it more dynamic
 * range, which is why ANT prefers it for long-tailed tensors.)
 */
AntDecision antCalibrate4bit(std::span<const float> xs);

/** Fake-quantize with a frozen ANT decision (clipping, no outliers). */
std::vector<float> antFakeQuant(std::span<const float> xs,
                                const AntDecision &d);

/** The ANT scheme. */
class AntScheme : public Scheme
{
  public:
    /**
     * @param bits Base precision, 4 or 8.
     * @param mixed_precision Allow per-tensor escalation of 4-bit
     *        tensors to int8 when the relative MSE exceeds
     *        @p escalate_threshold.
     * @param escalate_threshold Relative MSE (MSE / mean square) above
     *        which a tensor escalates to int8.
     */
    AntScheme(int bits, bool mixed_precision = true,
              double escalate_threshold = 1e-3);

    std::string name() const override;
    std::vector<float> apply(std::span<const float> xs,
                             TensorKind kind) override;
    Applier calibrate(std::span<const float> calibration,
                      TensorKind kind) override;
    int weightBits() const override { return bits_; }
    int activationBits() const override { return bits_; }

    /** Fraction of apply() calls that escalated to int8 so far. */
    double escalationRate() const;

  private:
    int bits_;
    bool mixedPrecision_;
    double escalateThreshold_;
    u64 applied_ = 0;
    u64 escalated_ = 0;
};

} // namespace olive

#endif // OLIVE_BASELINES_ANT_HPP
