/**
 * @file
 * Outlier Suppression baseline (Wei et al., NeurIPS 2022), the paper's
 * strongest software-only comparator ("OS" in Tables 6 and 8).
 *
 * The original method migrates the LayerNorm gamma into the following
 * weights and clips activations token-wise with a learned range.  The
 * effect, from the quantizer's point of view, is per-channel scale
 * factors plus an aggressively clipped range — which we model directly:
 * per-output-channel symmetric int quantization of weights with an
 * MSE-optimal clip, and per-tensor clipped quantization of activations.
 * The "QAT" rows of the paper additionally fine-tune downstream
 * parameters; our evaluation harness reproduces that by retraining the
 * task head after quantization (see eval::accuracy).
 */

#ifndef OLIVE_BASELINES_OUTLIER_SUPPRESSION_HPP
#define OLIVE_BASELINES_OUTLIER_SUPPRESSION_HPP

#include "quant/scheme.hpp"

namespace olive {

/** Outlier Suppression proxy as a Scheme. */
class OutlierSuppressionScheme : public Scheme
{
  public:
    /** @param bits Precision for weights and activations (4 or 6). */
    explicit OutlierSuppressionScheme(int bits);

    std::string name() const override;
    std::vector<float> apply(std::span<const float> xs,
                             TensorKind kind) override;
    std::vector<float> applyMatrix(std::span<const float> xs, size_t rows,
                                   size_t cols, TensorKind kind) override;
    Applier calibrate(std::span<const float> calibration,
                      TensorKind kind) override;
    int weightBits() const override { return bits_; }
    int activationBits() const override { return bits_; }

  private:
    int bits_;
    int maxq_;
};

} // namespace olive

#endif // OLIVE_BASELINES_OUTLIER_SUPPRESSION_HPP
