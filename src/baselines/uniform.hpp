/**
 * @file
 * Symmetric uniform integer quantization (the "int8" / "int4" rows of
 * the paper's tables) with MSE-optimal clipping.
 *
 * This is the standard PTQ baseline: a single per-tensor scale, values
 * round to the nearest integer in [-maxq, maxq] and saturate beyond.
 * There is no outlier mechanism, so the scale search must trade outlier
 * clipping against bulk resolution — the trade-off OliVe removes.
 */

#ifndef OLIVE_BASELINES_UNIFORM_HPP
#define OLIVE_BASELINES_UNIFORM_HPP

#include "quant/scheme.hpp"

namespace olive {

/**
 * MSE-optimal symmetric scale for quantizing @p xs onto [-maxq, maxq].
 * Searches clip ratios between 0.05 and 1.0 of the absolute maximum.
 */
float searchUniformScale(std::span<const float> xs, int maxq);

/** Fake-quantize @p xs uniformly with the given scale and maxq. */
std::vector<float> uniformFakeQuant(std::span<const float> xs, float scale,
                                    int maxq);

/** Symmetric uniform int quantization of weights and activations. */
class UniformIntScheme : public Scheme
{
  public:
    /** @param bits 4 or 8. */
    explicit UniformIntScheme(int bits);

    std::string name() const override;
    std::vector<float> apply(std::span<const float> xs,
                             TensorKind kind) override;
    Applier calibrate(std::span<const float> calibration,
                      TensorKind kind) override;
    int weightBits() const override { return bits_; }
    int activationBits() const override { return bits_; }

  private:
    int bits_;
    int maxq_;
};

} // namespace olive

#endif // OLIVE_BASELINES_UNIFORM_HPP
