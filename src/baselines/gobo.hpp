/**
 * @file
 * GOBO baseline (Zadeh et al., MICRO 2020): weight-only outlier-aware
 * quantization with a global sparse coordinate list.
 *
 * GOBO splits weights into a Gaussian group (quantized to a small
 * centroid dictionary, 3-4 bits per weight) and an outlier group kept at
 * full precision and addressed through a coordinate list.  Activations
 * are untouched, and on GPU the compute stays FP16 — GOBO only
 * compresses DRAM traffic.  Both properties are what the performance
 * model penalizes in Fig. 9.
 */

#ifndef OLIVE_BASELINES_GOBO_HPP
#define OLIVE_BASELINES_GOBO_HPP

#include "quant/scheme.hpp"
#include "util/common.hpp"

namespace olive {

/** GOBO encoding of one weight tensor. */
struct GoboEncoding
{
    std::vector<float> centroids;  //!< Dictionary for the Gaussian group.
    std::vector<u8> codes;         //!< Per-weight centroid index.
    std::vector<u32> outlierIdx;   //!< Coordinate list (flat indices).
    std::vector<float> outlierVal; //!< Full-precision outlier values.

    /** Fraction of weights stored as outliers. */
    double outlierRatio(size_t total) const;
};

/**
 * Encode @p xs with GOBO: values beyond @p outlier_sigma standard
 * deviations go to the outlier list; the rest map to 2^bits centroids
 * refined with Lloyd iterations.
 */
GoboEncoding goboEncode(std::span<const float> xs, int bits,
                        double outlier_sigma = 3.3, int lloyd_iters = 6);

/** Reconstruct the tensor from a GOBO encoding. */
std::vector<float> goboDecode(const GoboEncoding &enc, size_t n);

/** GOBO as a Scheme (weight-only; activations pass through). */
class GoboScheme : public Scheme
{
  public:
    /** @param bits Dictionary bits for the Gaussian group (3 or 4). */
    explicit GoboScheme(int bits = 4, double outlier_sigma = 3.3);

    std::string name() const override;
    std::vector<float> apply(std::span<const float> xs,
                             TensorKind kind) override;
    int weightBits() const override { return bits_; }
    int activationBits() const override { return 32; } //!< weight-only

  private:
    int bits_;
    double outlierSigma_;
};

} // namespace olive

#endif // OLIVE_BASELINES_GOBO_HPP
