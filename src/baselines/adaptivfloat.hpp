/**
 * @file
 * AdaptivFloat baseline (Tambe et al., DAC 2020): low-bit floating point
 * with a per-tensor optimal exponent bias.
 *
 * Unlike OliVe's abfloat — whose bias pushes the representable range
 * *above* the normal values to dedicate all codes to outliers —
 * AdaptivFloat centers its range on the whole tensor: the bias is chosen
 * so the maximum representable value just covers the tensor's absolute
 * maximum.  The format keeps subnormal-free semantics with an implicit
 * leading one; the bias may be negative (fractional values).
 */

#ifndef OLIVE_BASELINES_ADAPTIVFLOAT_HPP
#define OLIVE_BASELINES_ADAPTIVFLOAT_HPP

#include "quant/scheme.hpp"

namespace olive {

/** One AdaptivFloat format instance (per-tensor bias). */
struct AdaptivFloatFormat
{
    int expBits = 2;   //!< Exponent field width.
    int mantBits = 1;  //!< Mantissa field width.
    int bias = 0;      //!< Per-tensor exponent bias (may be negative).

    /** Largest representable magnitude. */
    double maxValue() const;

    /** Quantize one value to the nearest representable. */
    double quantize(double x) const;
};

/** Choose the bias so maxValue() just covers max|xs|. */
AdaptivFloatFormat adaptivFloatFit(std::span<const float> xs, int bits);

/** AdaptivFloat as a Scheme (weights and activations). */
class AdaptivFloatScheme : public Scheme
{
  public:
    /** @param bits Total width including sign: 4 (E2M1) or 8 (E4M3). */
    explicit AdaptivFloatScheme(int bits = 8);

    std::string name() const override;
    std::vector<float> apply(std::span<const float> xs,
                             TensorKind kind) override;
    int weightBits() const override { return bits_; }
    int activationBits() const override { return bits_; }

  private:
    int bits_;
};

} // namespace olive

#endif // OLIVE_BASELINES_ADAPTIVFLOAT_HPP
