/**
 * @file
 * OLAccel baseline (Park et al., ISCA 2018): outlier-aware low-precision
 * quantization with element-wise mixed precision.
 *
 * A small fraction of the largest-magnitude values (the outliers) keep
 * high precision (8/16-bit) and are addressed through a coordinate
 * list; the dense remainder is quantized at 4 bits with a range computed
 * over non-outliers only.  Extended to transformers with both weight and
 * activation quantization, as the paper's methodology section does.
 */

#ifndef OLIVE_BASELINES_OLACCEL_HPP
#define OLIVE_BASELINES_OLACCEL_HPP

#include "quant/scheme.hpp"
#include "util/common.hpp"

namespace olive {

/** OLAccel encoding summary for one tensor. */
struct OlaccelEncoding
{
    float normalScale = 1.0f;      //!< 4-bit scale over non-outliers.
    float outlierScale = 1.0f;     //!< High-precision scale.
    std::vector<u32> outlierIdx;   //!< Coordinate list.
    std::vector<float> decoded;    //!< Reconstructed values.
};

/**
 * Encode with OLAccel: the top @p outlier_frac fraction by magnitude is
 * quantized at @p outlier_bits, the rest at 4 bits over the reduced
 * range.
 */
OlaccelEncoding olaccelEncode(std::span<const float> xs, double outlier_frac,
                              int outlier_bits);

/** OLAccel as a Scheme. */
class OlaccelScheme : public Scheme
{
  public:
    /**
     * @param outlier_frac Fraction of values kept high precision (the
     *        OLAccel paper uses ~3 %).
     * @param outlier_bits Precision of outliers (8 or 16).
     */
    explicit OlaccelScheme(double outlier_frac = 0.03, int outlier_bits = 8);

    std::string name() const override;
    std::vector<float> apply(std::span<const float> xs,
                             TensorKind kind) override;
    int weightBits() const override { return 4; }
    int activationBits() const override { return 4; }

  private:
    double outlierFrac_;
    int outlierBits_;
};

} // namespace olive

#endif // OLIVE_BASELINES_OLACCEL_HPP
