#include "gobo.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace olive {

double
GoboEncoding::outlierRatio(size_t total) const
{
    return total ? static_cast<double>(outlierIdx.size()) /
                       static_cast<double>(total)
                 : 0.0;
}

GoboEncoding
goboEncode(std::span<const float> xs, int bits, double outlier_sigma,
           int lloyd_iters)
{
    OLIVE_ASSERT(bits >= 2 && bits <= 4, "GOBO dictionaries are 2-4 bits");
    GoboEncoding enc;
    const double m = stats::mean(xs);
    const double sigma = stats::stddev(xs);
    const double limit = outlier_sigma * sigma;

    // Split into Gaussian group and outlier group.
    std::vector<float> gauss;
    gauss.reserve(xs.size());
    for (size_t i = 0; i < xs.size(); ++i) {
        if (sigma > 0.0 && std::fabs(xs[i] - m) > limit) {
            enc.outlierIdx.push_back(static_cast<u32>(i));
            enc.outlierVal.push_back(xs[i]);
        } else {
            gauss.push_back(xs[i]);
        }
    }

    // Initialize centroids uniformly over the Gaussian group's range,
    // then refine with Lloyd iterations (GOBO's dictionary fit).
    const size_t k = size_t{1} << bits;
    float lo = 0.0f, hi = 0.0f;
    if (!gauss.empty()) {
        lo = *std::min_element(gauss.begin(), gauss.end());
        hi = *std::max_element(gauss.begin(), gauss.end());
    }
    enc.centroids.resize(k);
    for (size_t c = 0; c < k; ++c) {
        enc.centroids[c] =
            lo + (hi - lo) * (static_cast<float>(c) + 0.5f) /
                     static_cast<float>(k);
    }

    auto nearest = [&](float v) {
        size_t best = 0;
        float bestd = std::fabs(v - enc.centroids[0]);
        for (size_t c = 1; c < k; ++c) {
            const float d = std::fabs(v - enc.centroids[c]);
            if (d < bestd) {
                bestd = d;
                best = c;
            }
        }
        return best;
    };

    for (int it = 0; it < lloyd_iters; ++it) {
        std::vector<double> sum(k, 0.0);
        std::vector<size_t> cnt(k, 0);
        for (float v : gauss) {
            const size_t c = nearest(v);
            sum[c] += v;
            ++cnt[c];
        }
        for (size_t c = 0; c < k; ++c) {
            if (cnt[c] > 0)
                enc.centroids[c] =
                    static_cast<float>(sum[c] / static_cast<double>(cnt[c]));
        }
    }

    // Assign final codes in original order (identifier-free: outliers
    // live purely in the coordinate list).
    enc.codes.resize(xs.size());
    size_t out_cursor = 0;
    for (size_t i = 0; i < xs.size(); ++i) {
        if (out_cursor < enc.outlierIdx.size() &&
            enc.outlierIdx[out_cursor] == i) {
            enc.codes[i] = 0; // placeholder; decoded from the list
            ++out_cursor;
        } else {
            enc.codes[i] = static_cast<u8>(nearest(xs[i]));
        }
    }
    return enc;
}

std::vector<float>
goboDecode(const GoboEncoding &enc, size_t n)
{
    OLIVE_ASSERT(enc.codes.size() == n, "GOBO code stream size mismatch");
    std::vector<float> out(n);
    for (size_t i = 0; i < n; ++i)
        out[i] = enc.centroids[enc.codes[i]];
    for (size_t j = 0; j < enc.outlierIdx.size(); ++j)
        out[enc.outlierIdx[j]] = enc.outlierVal[j];
    return out;
}

GoboScheme::GoboScheme(int bits, double outlier_sigma)
    : bits_(bits), outlierSigma_(outlier_sigma)
{
}

std::string
GoboScheme::name() const
{
    return std::to_string(bits_) + "-bit GOBO (weights only)";
}

std::vector<float>
GoboScheme::apply(std::span<const float> xs, TensorKind kind)
{
    if (kind == TensorKind::Activation)
        return std::vector<float>(xs.begin(), xs.end());
    const auto enc = goboEncode(xs, bits_, outlierSigma_);
    return goboDecode(enc, xs.size());
}

} // namespace olive
