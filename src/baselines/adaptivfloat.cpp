#include "adaptivfloat.hpp"

#include <algorithm>
#include <cmath>

#include "util/common.hpp"
#include "util/stats.hpp"

namespace olive {

double
AdaptivFloatFormat::maxValue() const
{
    const double integer =
        static_cast<double>((1 << (mantBits + 1)) - 1);
    const int max_exp = (1 << expBits) - 1;
    return std::ldexp(integer, max_exp + bias - mantBits);
}

double
AdaptivFloatFormat::quantize(double x) const
{
    if (x == 0.0)
        return 0.0;
    const double sign = (x < 0.0) ? -1.0 : 1.0;
    double mag = std::fabs(x);

    // value = (1.mantissa) * 2^(exp + bias); mantissa has mantBits bits.
    int exp = static_cast<int>(std::floor(std::log2(mag))) - bias;
    const int max_exp = (1 << expBits) - 1;

    if (exp < 0) {
        // Below the smallest binade: round to zero or the minimum value.
        const double min_val = std::ldexp(1.0, bias);
        return (mag < 0.5 * min_val) ? 0.0 : sign * min_val;
    }
    if (exp > max_exp)
        exp = max_exp;

    const double binade = std::ldexp(1.0, exp + bias);
    double frac = mag / binade; // in [1, 2) when in range
    frac = std::min(frac, 2.0 - std::ldexp(1.0, -mantBits));
    const double steps = std::ldexp(1.0, mantBits);
    const double mant = std::nearbyint((frac - 1.0) * steps) / steps;
    double q = (1.0 + mant) * binade;
    q = std::min(q, maxValue());
    return sign * q;
}

AdaptivFloatFormat
adaptivFloatFit(std::span<const float> xs, int bits)
{
    OLIVE_ASSERT(bits == 4 || bits == 8, "AdaptivFloat supports 4/8 bits");
    AdaptivFloatFormat fmt;
    if (bits == 4) {
        fmt.expBits = 2;
        fmt.mantBits = 1;
    } else {
        fmt.expBits = 4;
        fmt.mantBits = 3;
    }
    const double amax = stats::absMax(xs);
    if (amax <= 0.0) {
        fmt.bias = 0;
        return fmt;
    }
    // Pick the bias so the top binade covers amax (the AdaptivFloat
    // paper's closed-form bias selection).
    const int max_exp = (1 << fmt.expBits) - 1;
    fmt.bias = static_cast<int>(std::floor(std::log2(amax))) - max_exp;
    return fmt;
}

AdaptivFloatScheme::AdaptivFloatScheme(int bits)
    : bits_(bits)
{
    OLIVE_ASSERT(bits == 4 || bits == 8, "AdaptivFloat supports 4/8 bits");
}

std::string
AdaptivFloatScheme::name() const
{
    return std::to_string(bits_) + "-bit AdaptivFloat";
}

std::vector<float>
AdaptivFloatScheme::apply(std::span<const float> xs, TensorKind)
{
    const AdaptivFloatFormat fmt = adaptivFloatFit(xs, bits_);
    std::vector<float> out(xs.size());
    for (size_t i = 0; i < xs.size(); ++i)
        out[i] = static_cast<float>(fmt.quantize(xs[i]));
    return out;
}

} // namespace olive
