#include "olaccel.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace olive {

OlaccelEncoding
olaccelEncode(std::span<const float> xs, double outlier_frac,
              int outlier_bits)
{
    OLIVE_ASSERT(outlier_frac >= 0.0 && outlier_frac < 0.5,
                 "outlier fraction out of range");
    OlaccelEncoding enc;
    enc.decoded.resize(xs.size());
    if (xs.empty())
        return enc;

    // Magnitude threshold at the (1 - outlier_frac) quantile.
    std::vector<float> mags(xs.size());
    for (size_t i = 0; i < xs.size(); ++i)
        mags[i] = std::fabs(xs[i]);
    const double thresh =
        stats::percentile(mags, 100.0 * (1.0 - outlier_frac));

    double normal_max = 0.0, outlier_max = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        if (mags[i] > thresh) {
            enc.outlierIdx.push_back(static_cast<u32>(i));
            outlier_max = std::max(outlier_max, double{mags[i]});
        } else {
            normal_max = std::max(normal_max, double{mags[i]});
        }
    }

    const int nmaxq = 7; // 4-bit normals
    const int omaxq = (1 << (outlier_bits - 1)) - 1;
    enc.normalScale =
        (normal_max > 0.0) ? static_cast<float>(normal_max / nmaxq) : 1.0f;
    enc.outlierScale =
        (outlier_max > 0.0) ? static_cast<float>(outlier_max / omaxq) : 1.0f;

    size_t cursor = 0;
    for (size_t i = 0; i < xs.size(); ++i) {
        const bool is_outlier = cursor < enc.outlierIdx.size() &&
                                enc.outlierIdx[cursor] == i;
        if (is_outlier) {
            ++cursor;
            double q = std::nearbyint(xs[i] / enc.outlierScale);
            q = std::clamp(q, static_cast<double>(-omaxq),
                           static_cast<double>(omaxq));
            enc.decoded[i] = static_cast<float>(q * enc.outlierScale);
        } else {
            double q = std::nearbyint(xs[i] / enc.normalScale);
            q = std::clamp(q, static_cast<double>(-nmaxq),
                           static_cast<double>(nmaxq));
            enc.decoded[i] = static_cast<float>(q * enc.normalScale);
        }
    }
    return enc;
}

OlaccelScheme::OlaccelScheme(double outlier_frac, int outlier_bits)
    : outlierFrac_(outlier_frac), outlierBits_(outlier_bits)
{
}

std::string
OlaccelScheme::name() const
{
    return "OLAccel (4-bit + " + std::to_string(outlierBits_) +
           "-bit outliers)";
}

std::vector<float>
OlaccelScheme::apply(std::span<const float> xs, TensorKind)
{
    return olaccelEncode(xs, outlierFrac_, outlierBits_).decoded;
}

} // namespace olive
