#include "uniform.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/common.hpp"
#include "util/stats.hpp"

namespace olive {

float
searchUniformScale(std::span<const float> xs, int maxq)
{
    const double amax = stats::absMax(xs);
    OLIVE_ASSERT(amax > 0.0, "cannot quantize an all-zero tensor");

    // Subsample for the search to bound cost on large tensors.
    constexpr size_t kCap = 8192;
    std::vector<float> s;
    if (xs.size() > kCap) {
        const size_t stride = xs.size() / kCap;
        s.reserve(kCap);
        for (size_t i = 0; i < xs.size() && s.size() < kCap; i += stride)
            s.push_back(xs[i]);
    } else {
        s.assign(xs.begin(), xs.end());
    }

    double best_mse = std::numeric_limits<double>::infinity();
    float best_scale = static_cast<float>(amax / maxq);
    constexpr int kPoints = 40;
    for (int i = 0; i < kPoints; ++i) {
        const double frac = static_cast<double>(i) / (kPoints - 1);
        const double clip = amax * (0.05 + 0.95 * frac);
        const float scale = static_cast<float>(clip / maxq);
        const auto rt = uniformFakeQuant(s, scale, maxq);
        const double m = stats::mse(s, rt);
        if (m < best_mse) {
            best_mse = m;
            best_scale = scale;
        }
    }
    return best_scale;
}

std::vector<float>
uniformFakeQuant(std::span<const float> xs, float scale, int maxq)
{
    OLIVE_ASSERT(scale > 0.0f, "uniform scale must be positive");
    std::vector<float> out(xs.size());
    for (size_t i = 0; i < xs.size(); ++i) {
        double q = std::nearbyint(static_cast<double>(xs[i]) / scale);
        q = std::clamp(q, static_cast<double>(-maxq),
                       static_cast<double>(maxq));
        out[i] = static_cast<float>(q * scale);
    }
    return out;
}

UniformIntScheme::UniformIntScheme(int bits)
    : bits_(bits), maxq_((1 << (bits - 1)) - 1)
{
    OLIVE_ASSERT(bits == 4 || bits == 6 || bits == 8,
                 "uniform int supports 4/6/8 bits");
}

std::string
UniformIntScheme::name() const
{
    return "int" + std::to_string(bits_);
}

std::vector<float>
UniformIntScheme::apply(std::span<const float> xs, TensorKind)
{
    const float scale = searchUniformScale(xs, maxq_);
    return uniformFakeQuant(xs, scale, maxq_);
}

Scheme::Applier
UniformIntScheme::calibrate(std::span<const float> calibration, TensorKind)
{
    const float scale = searchUniformScale(calibration, maxq_);
    const int maxq = maxq_;
    return [scale, maxq](std::span<const float> xs) {
        return uniformFakeQuant(xs, scale, maxq);
    };
}

} // namespace olive
